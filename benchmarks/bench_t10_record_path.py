"""T10 — Record path: logging throughput, async vs sync flush, commit cache.

Three measurements of the write path rebuilt by the ``repro.runtime``
subsystem:

* **Staging throughput** — raw ``flor.log`` calls per second against a plain
  ``list.append`` baseline.  The record path stages a tuple per call and
  defers value encoding, so the instrumented loop should stay within a small
  constant factor of the floor.
* **Flush-bound workload** — many small flushes, the shape produced by
  checkpoint loops and chatty services.  Sync mode pays one SQLite
  transaction per flush on the recording thread; async mode hands batches to
  the background flusher, which coalesces everything queued since its last
  transaction.  Asserted: **async ≥ 3× sync**.
* **Snapshot-cache commits** — per-epoch ``commit()`` over unchanged tracked
  files reuses cached object ids instead of re-reading and re-hashing every
  tracked byte.
"""

from __future__ import annotations

import os
import time

import pytest
from conftest import report

from repro import ProjectConfig, Session
from repro.versioning.repository import Repository

#: Flush counts per scale.  The >=3x speedup floor is asserted only at full
#: scale (mirroring T5/T9's convention): CI's smoke-bench job runs the smoke
#: scale purely to record the speedup trajectory in BENCH_*.json, where a
#: noisy shared runner must not fail the build on a wall-clock ratio.
FLUSH_SCALES = {"smoke": 200, "full": 1000}
RECORDS_PER_FLUSH = 2
STAGE_CALLS = 20_000


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _flush_bound(session: Session, flushes: int) -> None:
    for batch in range(flushes):
        for j in range(RECORDS_PER_FLUSH):
            session.log("metric", batch + j * 1e-6)
        session.flush(wait=False)
    session.flush()  # final read-your-writes barrier


def test_staging_throughput(benchmark, make_session):
    session = make_session("t10_stage", default_filename="train.py")

    def baseline() -> list:
        sink = []
        for i in range(STAGE_CALLS):
            sink.append(("metric", i * 0.001))
        return sink

    def instrumented() -> None:
        for i in range(STAGE_CALLS):
            session.log("metric", i * 0.001)

    baseline_seconds = _time(baseline)
    staged_seconds = benchmark.pedantic(
        lambda: _time(instrumented), rounds=1, iterations=1
    )
    flush_seconds = _time(session.flush)
    logs_per_second = STAGE_CALLS / staged_seconds if staged_seconds else float("inf")
    report(
        "T10: staging throughput",
        [
            {
                "calls": STAGE_CALLS,
                "baseline_s": baseline_seconds,
                "staged_s": staged_seconds,
                "flush_s": flush_seconds,
                "logs_per_sec": logs_per_second,
                "vs_baseline_x": staged_seconds / baseline_seconds if baseline_seconds else 0.0,
            }
        ],
    )
    assert session.logs.count() == STAGE_CALLS
    # Conservative floor: staging must stay far above per-call SQLite rates.
    assert logs_per_second > 20_000


@pytest.mark.parametrize("scale", sorted(FLUSH_SCALES))
def test_async_flush_beats_sync_on_flush_bound_workload(benchmark, make_session, scale):
    flushes = FLUSH_SCALES[scale]
    warm = make_session(f"t10_warm_{scale}", default_filename="train.py", flush_mode="sync")
    sync_session = make_session(f"t10_sync_{scale}", default_filename="train.py", flush_mode="sync")
    async_session = make_session(f"t10_async_{scale}", default_filename="train.py", flush_mode="async")

    _flush_bound(warm, flushes)  # warm imports, page caches, WAL files

    sync_seconds = _time(lambda: _flush_bound(sync_session, flushes))
    async_seconds = benchmark.pedantic(
        lambda: _time(lambda: _flush_bound(async_session, flushes)), rounds=1, iterations=1
    )
    speedup = sync_seconds / async_seconds if async_seconds else float("inf")
    stats = async_session.flusher.stats
    report(
        f"T10: flush-bound workload, {scale} scale (sync vs async)",
        [
            {
                "flushes": flushes,
                "records": flushes * RECORDS_PER_FLUSH,
                "sync_s": sync_seconds,
                "async_s": async_seconds,
                "speedup_x": speedup,
                "sync_txns": sync_session.flusher.stats.transactions,
                "async_txns": stats.transactions,
                "max_coalesced": stats.max_coalesced_batches,
            }
        ],
    )
    assert sync_session.logs.count() == flushes * RECORDS_PER_FLUSH
    assert async_session.logs.count() == flushes * RECORDS_PER_FLUSH
    # The headline claim of this PR: taking SQLite off the recording thread
    # (and coalescing transactions) wins at least 3x on flush-bound work.
    # Asserted at full scale only — the smoke scale records the trajectory.
    if scale == "full":
        assert speedup >= 3.0


def test_snapshot_cache_accelerates_per_epoch_commits(benchmark, tmp_path):
    config = ProjectConfig(tmp_path / "t10_commit", "t10_commit").ensure_layout()
    tracked = []
    for i in range(20):
        path = config.root / f"module_{i:02d}.py"
        path.write_text("\n".join(f"def fn_{j}(): return {j}" for j in range(200)))
        old = time.time() - 3600
        os.utime(path, (old, old))
        tracked.append(path.name)

    with Session(config, default_filename="train.py") as session:
        session.track(*tracked)
        repo: Repository = session.repository

        def cold_commit() -> None:
            repo._hash_cache.clear()
            session.log("epoch", 0)
            session.commit("cold")

        def warm_commit() -> None:
            session.log("epoch", 1)
            session.commit("warm")

        cold_seconds = _time(cold_commit)
        warm_runs = 5
        warm_seconds = benchmark.pedantic(
            lambda: _time(lambda: [warm_commit() for _ in range(warm_runs)]) / warm_runs,
            rounds=1,
            iterations=1,
        )
        speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
        report(
            "T10: per-epoch commit (snapshot cache)",
            [
                {
                    "tracked_files": len(tracked),
                    "cold_commit_s": cold_seconds,
                    "warm_commit_s": warm_seconds,
                    "speedup_x": speedup,
                    "cache_hits": repo.snapshot_stats["hits"],
                    "cache_misses": repo.snapshot_stats["misses"],
                }
            ],
        )
        assert repo.snapshot_stats["hits"] >= len(tracked)  # warm commits hit
