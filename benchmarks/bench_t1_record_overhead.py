"""T1 — Record overhead: instrumented vs. uninstrumented training.

The hindsight-logging line of work claims recording is low-overhead.  This
benchmark trains the same model with and without Flor instrumentation and
reports the wall-clock ratio.  Expected shape: a small constant factor
(well under 2× for this workload), dominated by log buffering and the
adaptive checkpointing policy's occasional serialization.
"""

from __future__ import annotations

import time

import pytest
from conftest import report

from repro.workloads import TrainingWorkload

EPOCH_SWEEP = [2, 4]


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.mark.parametrize("epochs", EPOCH_SWEEP)
def test_record_overhead(benchmark, make_session, epochs):
    workload = TrainingWorkload(samples=400, features=16, epochs=epochs, batch_size=32)

    baseline_session = make_session(f"t1_base_{epochs}")
    instrumented_session = make_session(f"t1_flor_{epochs}")  # async record path
    sync_session = make_session(f"t1_sync_{epochs}", flush_mode="sync")
    warmup_session = make_session(f"t1_warm_{epochs}")

    # Warm NumPy / import caches so the baseline is not penalized for being
    # the first training run in the process.
    workload.run(warmup_session, use_flor=False)

    baseline_seconds = _time(lambda: workload.run(baseline_session, use_flor=False))
    sync_seconds = _time(lambda: workload.run(sync_session, use_flor=True))
    instrumented_seconds = benchmark.pedantic(
        lambda: _time(lambda: workload.run(instrumented_session, use_flor=True)),
        rounds=1,
        iterations=1,
    )

    overhead = instrumented_seconds / baseline_seconds if baseline_seconds else float("inf")
    sync_overhead = sync_seconds / baseline_seconds if baseline_seconds else float("inf")
    report(
        f"T1: record overhead ({epochs} epochs)",
        [
            {
                "epochs": epochs,
                "baseline_s": baseline_seconds,
                "instrumented_s": instrumented_seconds,
                "overhead_x": overhead,
                "overhead_sync_x": sync_overhead,
                "log_records": instrumented_session.logs.count(),
                "checkpoints": instrumented_session.checkpoints.saved,
            }
        ],
    )
    # Shape check: instrumentation does not blow up training time.  The async
    # record path (tuple staging + background flush + off-thread checkpoint
    # writes) tightened this bound from the historical 5x; it stays loose in
    # absolute terms (observed ~2x) because tiny workloads exaggerate
    # constant costs and this also runs on noisy shared CI runners.
    assert overhead < 4.0
    assert instrumented_session.logs.count() > 0
    assert baseline_session.logs.count() == 0
