"""F1 — Figure 1: the relational data model, populated and introspected.

Regenerates the figure as data: after a representative pipeline run, every
table of the data model holds rows, and the virtual ``git`` table is served
by the version store.  The benchmark measures the cost of populating the
model for a small pipeline run.
"""

from __future__ import annotations

from conftest import report

from repro.relational.queries import git_view
from repro.relational.schema import TABLES
from repro.workloads import PipelineWorkload


def _populate(session, workdir) -> None:
    workload = PipelineWorkload(documents=3, max_pages=4, epochs=1, seed=0)
    # Track the pipeline definition so change context (the virtual git table)
    # has content: every build commit snapshots the Makefile.
    (session.config.root / "Makefile").write_text(workload.makefile_text())
    session.track("Makefile")
    executor, pipeline = workload.build_executor(session, workdir)
    executor.build("run")
    pipeline.feedback_round({pipeline.state.corpus.document_names()[0]: [0, 0, 1]})


def test_figure1_tables_populated(benchmark, make_session, tmp_path):
    session = make_session("f1")

    def run():
        _populate(session, tmp_path / "build")
        return {table: session.db.count(table) for table in TABLES if table != "meta"}

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    git_rows = len(git_view(session.repository))
    rows = [
        {"table": "logs", "rows": counts["logs"]},
        {"table": "loops", "rows": counts["loops"]},
        {"table": "ts2vid", "rows": counts["ts2vid"]},
        {"table": "obj_store", "rows": counts["obj_store"]},
        {"table": "build_deps", "rows": counts["build_deps"]},
        {"table": "git (virtual)", "rows": git_rows},
    ]
    report("F1: Figure 1 data model after one pipeline run + feedback", rows)
    assert counts["logs"] > 0
    assert counts["loops"] > 0
    assert counts["ts2vid"] >= 2  # pipeline build commit + feedback commit
    assert counts["obj_store"] > 0
    assert counts["build_deps"] == 5  # one row per Makefile target
    assert git_rows >= 1  # the tracked Makefile appears in change context
