"""T16 — Tail fan-out: 200 attached subscribers must not tax ingest.

The tail plane (:mod:`repro.obs.tail` + ``GET /projects/<name>/tail``)
is notify-and-refetch: the broker carries wakeups only, subscribers
re-query committed rows from SQLite past their own cursor.  Ingest
therefore pays one O(subscribers) event-set per commit and nothing
else — no per-subscriber buffering, no copy of the row into N queues,
and crucially *no delivery work on the ingest path*: a subscriber's
serialization happens when it pulls, bounded only by its own socket,
and a lagging subscriber catches up from the store afterwards.

That decoupling is what this benchmark measures.  A crowd of tail
subscribers (200 at full scale) subscribes to the stormed projects and
stays attached through the whole T8-shape ingest storm — every commit
pays the full 200-subscriber notify — while their delivery is
deliberately lazy, exactly as a lagging dashboard would be.  (Delivery
itself is inherently O(subscribers × rows) serialization work; a
same-process benchmark that forced it *inside* the measured window
would measure the GIL, not the tail plane.)  After the seal barrier
every subscriber drains its full trail, forcibly disconnected and
reconnected with ``Last-Event-ID`` mid-drain.

Claims asserted at every scale (the invariants):

* zero subscriber errors and zero evictions — a lagging-but-bounded
  subscriber is never mistaken for a runaway slow consumer;
* every subscriber was forcibly disconnected at least once, and its
  delivered ``seq`` trail is still strictly the contiguous range
  ``1..watermark`` — no gap, no duplicate — which is exactly-once
  delivery across the reconnects;
* the :class:`~repro.testing.AckLedger` leg: every sealed value shows
  up in a genuinely *live* consumer's trail (second test).

Asserted at full scale only (T5/T9/T10/T13's convention): ingest
throughput with all 200 subscribers attached stays within 10% of the
no-subscriber baseline.
"""

from __future__ import annotations

import threading
import time
from urllib.parse import quote

import pytest
from conftest import report

from repro.service import FlorService
from repro.testing import AckLedger
from repro.webapp.framework import TestClient
from repro.workloads import ServiceLoadReport, ServiceWorkload

PROJECTS = 4
#: Full-scale headline: ingest throughput with subscribers attached.
THROUGHPUT_FLOOR = 0.9

SCALES = {
    "smoke": {"subscribers": 16, "clients": 4, "requests_per_client": 10, "batch": 16},
    "full": {"subscribers": 200, "clients": 8, "requests_per_client": 30, "batch": 64},
}

#: Seconds per subscriber connection leg — every leg ends in a forced
#: disconnect, and the next leg resumes from the subscriber's
#: ``Last-Event-ID`` cursor, so the storm continuously exercises the
#: backfill path, not just the live push.
LEG_SECONDS = 0.5
DRAIN_SECONDS = 60.0

MAX_SEQ_SQL = quote("SELECT MAX(seq) AS max_seq FROM logs")


class _TailConsumer(threading.Thread):
    """One subscriber: attach through the storm, then drain exactly-once.

    ``seqs`` accumulates every delivered ``logs.seq`` across all
    connection legs.  Because each reconnect presents the last delivered
    seq as ``Last-Event-ID``, an exactly-once stream makes ``seqs``
    strictly increasing and gap-free — asserted by the caller against
    the shard's sealed watermark.  Setting ``target`` (before ``stop``)
    tells the thread what watermark to drain to before exiting; the
    drain always splits across a forced disconnect/reconnect, so every
    subscriber exercises the cursor-resume path.

    ``live=True`` (the AckLedger leg) consumes eagerly during the storm
    instead, force-reconnect cycling every ``LEG_SECONDS``.
    """

    def __init__(
        self,
        client: TestClient,
        project: str,
        stop: threading.Event,
        *,
        live: bool = False,
        record_values: bool = False,
    ):
        super().__init__(daemon=True)
        self.client = client
        self.project = project
        self.stop = stop
        self.live = live
        self.record_values = record_values
        self.seqs: list[int] = []
        self.values: list[str] = []
        self.errors = 0
        self.evictions = 0
        self.reconnects = -1  # the first connection is not a *re*connect
        self.target = 0

    def _open(self):
        cursor = self.seqs[-1] if self.seqs else 0
        stream = self.client.sse(
            f"/projects/{self.project}/tail?keepalive=0.1",
            headers={"Last-Event-ID": str(cursor)},
        )
        if stream.status != 200:
            self.errors += 1
            return None
        self.reconnects += 1
        return stream

    def _leg(self, timeout: float, *, stop_at: int = 0) -> None:
        stream = self._open()
        if stream is None:
            return
        try:
            for event in stream.events(timeout=timeout):
                if event.event == "log":
                    seq = int(event.id)
                    self.seqs.append(seq)
                    if self.record_values:
                        self.values.append(str(event.json()["value"]))
                    if stop_at and seq >= stop_at:
                        return
                elif event.event == "evicted":
                    self.evictions += 1
                    return
        finally:
            stream.close()

    def _drain(self) -> None:
        """Catch up to ``target`` in two legs split by a forced reconnect.

        Both legs run unconditionally, so every consumer — even one that
        consumed the whole trail live — ends having resumed from its
        cursor across at least one forced disconnect.
        """
        deadline = time.monotonic() + DRAIN_SECONDS
        for stop_at in (max(1, self.target // 2), self.target):
            while True:
                self._leg(LEG_SECONDS, stop_at=stop_at)
                if self.seqs and self.seqs[-1] >= stop_at:
                    break
                if time.monotonic() >= deadline:
                    return

    def run(self) -> None:
        if self.live:
            while not self.stop.is_set():
                self._leg(LEG_SECONDS)
            self._drain()
            return
        # Lazy attach: hold a subscription through the whole storm —
        # every commit notifies it — without pulling a byte.  This is a
        # dashboard that fell behind; the drain below is it catching up.
        stream = self._open()
        self.stop.wait()
        if stream is not None:
            stream.close()
        self._drain()


def _drive_storm(
    tmp_path, label: str, *, subscribers: int, clients: int, requests_per_client: int, batch: int
) -> tuple[ServiceLoadReport, list[_TailConsumer], dict]:
    service = FlorService(tmp_path / label, pool_capacity=PROJECTS, flush_size=batch)
    try:
        client = TestClient(service.app())
        workload = ServiceWorkload(
            clients=clients,
            requests_per_client=requests_per_client,
            records_per_request=batch,
            projects=PROJECTS,
        )
        # Create every project before the crowd subscribes — a tail on a
        # project that does not exist yet is a 404, not a wait.
        for project in workload.project_names():
            seeded = client.post(
                f"/projects/{project}/logs",
                json_body={
                    "filename": "train.py",
                    "records": [{"name": "metric", "value": 0.0, "ctx_id": 0}],
                },
            )
            assert seeded.status == 202
        stop = threading.Event()
        crowd = [
            _TailConsumer(client, workload.project_names()[i % PROJECTS], stop)
            for i in range(subscribers)
        ]
        for consumer in crowd:
            consumer.start()
        result = workload.run(client)
        # Seal every project (primary read = flush barrier), note the
        # watermarks, hand them to the crowd as drain targets, release.
        watermarks: dict[str, int] = {}
        for project in workload.project_names():
            rows = client.get(f"/projects/{project}/sql?q={MAX_SEQ_SQL}&primary=1").json()
            watermarks[project] = int(rows["records"][0]["max_seq"])
        for consumer in crowd:
            consumer.target = watermarks[consumer.project]
        stop.set()
        for consumer in crowd:
            consumer.join(timeout=DRAIN_SECONDS + 30)
            assert not consumer.is_alive(), f"subscriber on {consumer.project} hung"
        tail_stats = service.tail.stats()
        return result, crowd, {"watermarks": watermarks, "tail": tail_stats}
    finally:
        service.close()


@pytest.mark.parametrize("scale", sorted(SCALES))
def test_tail_fanout_throughput_and_exactly_once(benchmark, tmp_path, scale):
    params = dict(SCALES[scale])
    subscribers = params.pop("subscribers")
    baseline = _drive_storm(tmp_path, f"t16_base_{scale}", subscribers=0, **params)[0]
    result, crowd, extra = benchmark.pedantic(
        lambda: _drive_storm(tmp_path, f"t16_subs_{scale}", subscribers=subscribers, **params),
        rounds=1,
        iterations=1,
    )
    delivered = sum(len(c.seqs) for c in crowd)
    report(
        f"T16: ingest under tail fan-out, {scale} scale "
        f"({subscribers} subscribers, {params['clients']} clients, batch={params['batch']})",
        [
            {
                "mode": "baseline",
                "records_s": baseline.records_per_second,
                "p99_ms": baseline.percentile(99) * 1e3,
                "records": baseline.records,
                "delivered": 0,
                "reconnects": 0,
            },
            {
                "mode": f"{subscribers} tails",
                "records_s": result.records_per_second,
                "p99_ms": result.percentile(99) * 1e3,
                "records": result.records,
                "delivered": delivered,
                "reconnects": sum(c.reconnects for c in crowd),
            },
        ],
    )
    assert result.errors == 0 and baseline.errors == 0
    assert sum(c.errors for c in crowd) == 0, "subscriber connections failed"
    assert sum(c.evictions for c in crowd) == 0, (
        "an actively consuming subscriber was evicted as a slow consumer"
    )
    # Exactly-once across every forced reconnect: each subscriber was
    # disconnected at least once, and its seq trail is still the
    # contiguous range 1..watermark for its project.
    for consumer in crowd:
        assert consumer.reconnects >= 1, f"{consumer.project} tail never reconnected"
        watermark = extra["watermarks"][consumer.project]
        assert consumer.seqs == list(range(1, watermark + 1)), (
            f"gap or duplicate in {consumer.project} tail: "
            f"{len(consumer.seqs)} rows delivered, watermark {watermark}"
        )
    assert extra["tail"]["evicted_total"] == 0
    if scale == "full":
        floor = THROUGHPUT_FLOOR * baseline.records_per_second
        assert result.records_per_second >= floor, (
            f"ingest fell to {result.records_per_second:.0f} rec/s with "
            f"{subscribers} subscribers attached "
            f"(baseline {baseline.records_per_second:.0f}, floor {floor:.0f})"
        )


def test_sealed_rows_survive_a_forced_reconnect_exactly_once(benchmark, tmp_path):
    """The AckLedger leg: every sealed value arrives, and arrives once.

    A ledger-tracked ingest stream runs against one project while a
    single *live* subscriber consumes through forced reconnect cycles.
    After the seal barrier the subscriber's trail must contain every
    sealed value, and the contiguous-seq check makes the delivery
    exactly-once.
    """

    def _run(label: str):
        ledger = AckLedger()
        service = FlorService(tmp_path / label, flush_size=8)
        try:
            client = TestClient(service.app())
            stop = threading.Event()
            consumer = _TailConsumer(client, "alpha", stop, live=True, record_values=True)
            for batch in range(30):
                if batch == 1:
                    consumer.start()  # alpha exists now; consume the rest live
                values = [f"b{batch}.r{r}" for r in range(8)]
                response = client.post(
                    "/projects/alpha/logs",
                    json_body={
                        "filename": "train.py",
                        "records": [
                            {"name": "metric", "value": v, "ctx_id": i}
                            for i, v in enumerate(values)
                        ],
                    },
                )
                assert response.status == 202
                ledger.record("alpha", "metric", values)

            mark = ledger.mark("alpha")
            rows = client.get(f"/projects/alpha/sql?q={MAX_SEQ_SQL}&primary=1").json()
            ledger.seal_through(mark, "alpha")
            watermark = int(rows["records"][0]["max_seq"])

            consumer.target = watermark
            stop.set()
            consumer.join(timeout=DRAIN_SECONDS + 30)
            assert not consumer.is_alive()
            return ledger, consumer, watermark
        finally:
            service.close()

    ledger, consumer, watermark = benchmark.pedantic(
        lambda: _run("t16_ledger"), rounds=1, iterations=1
    )
    report(
        "T16: AckLedger exactly-once across forced reconnects (live subscriber)",
        [
            {
                "delivered": len(consumer.seqs),
                "watermark": watermark,
                "reconnects": consumer.reconnects,
                "errors": consumer.errors,
            }
        ],
    )
    assert consumer.errors == 0 and consumer.evictions == 0
    assert consumer.reconnects >= 1, "the subscriber never reconnected"
    assert consumer.seqs == list(range(1, watermark + 1))
    sealed = ledger.sealed_values("alpha", "metric")
    assert len(sealed) == 30 * 8
    missing = sealed - set(consumer.values)
    assert not missing, f"sealed values never delivered: {sorted(missing)[:5]}"
