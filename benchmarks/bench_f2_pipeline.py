"""F2 — Figure 2: ML pipeline with feedback (Makefile, dataflow DAG, flor dataframe).

Regenerates the three panels of the figure:

* the Makefile / dependency DAG (asserted structurally),
* the feedback cycle (run → expert corrections → retrain), and
* the flor dataframe that joins model metrics across the resulting versions.

The benchmark measures one full cycle of the loop.
"""

from __future__ import annotations

from conftest import report

from repro.build.dag import BuildGraph
from repro.build.makefile import parse_makefile
from repro.mlops import MetricRegistry
from repro.workloads import PipelineWorkload


def test_figure2_pipeline_with_feedback(benchmark, make_session, tmp_path):
    session = make_session("f2")
    workload = PipelineWorkload(documents=4, max_pages=5, epochs=2, seed=2)
    executor, pipeline = workload.build_executor(session, tmp_path / "build")

    # Panel 1: the dependency DAG.
    graph = BuildGraph(parse_makefile(workload.makefile_text()))
    assert graph.dependencies("train") == ["featurize", "train.py"]
    assert "run" in graph.leaves()

    def one_cycle():
        executor.build("run", force=True)
        name = pipeline.state.corpus.document_names()[0]
        pipeline.feedback_round({name: list(range(len(pipeline.state.corpus.get(name))))})
        pipeline.train()
        session.commit("retrain after feedback")

    benchmark.pedantic(one_cycle, rounds=1, iterations=1)

    # Panel 3: the dataframe over metrics across the cycle's versions.
    registry = MetricRegistry(session)
    frame = registry.compare_runs(["acc", "recall"])
    rows = [
        {"run": row["tstamp"], "acc": row["acc"], "recall": row["recall"]}
        for row in frame.to_records()
    ]
    report("F2: per-run metrics after one feedback cycle", rows)
    assert len(frame) >= 2  # initial training + retraining
    assert len(session.ts2vid.all(session.projid)) >= 3  # build, feedback, retrain
