"""T4 — Parallel replay scaling across versions.

The paper attributes replay speed to "differential execution and
parallelism".  This benchmark records V versions of a script whose epochs do
non-trivial CPU work, then backfills a new statement across all versions
serially and with a process pool.  Expected shape: once per-version replay
cost clears pool start-up, the parallel backfill wins, approaching
``serial / min(workers, versions)``.
"""

from __future__ import annotations

import textwrap

from conftest import report

from repro import HindsightEngine, active_session, flor

VERSIONS = 6
WORKERS = 3
EPOCHS = 8
WORK_PER_EPOCH = 60000  # busy-loop units so each version's replay is measurable

_SCRIPT = textwrap.dedent(
    """
    lr = flor.arg("lr", {lr})
    state = {{"w": 0.0}}
    with flor.checkpointing(state=state):
        for epoch in flor.loop("epoch", range({epochs})):
            acc = 0.0
            for i in range({work}):
                acc += (i % 11) * 0.0001
            state["w"] += lr * acc
            flor.log("loss", 1.0 / (1.0 + state["w"]))
    """
).strip()

_NEW_SUFFIX = '\n        flor.log("weight", state["w"])'


def _source(version: int) -> str:
    return _SCRIPT.format(lr=0.01 * (version + 1), epochs=EPOCHS, work=WORK_PER_EPOCH)


def _new_source() -> str:
    return _source(VERSIONS - 1).replace(
        'flor.log("loss", 1.0 / (1.0 + state["w"]))',
        'flor.log("loss", 1.0 / (1.0 + state["w"]))' + _NEW_SUFFIX,
    )


def _record_versions(session) -> None:
    session.track("train.py")
    for version in range(VERSIONS):
        source = _source(version)
        (session.config.root / "train.py").write_text(source)
        namespace = {"__file__": "train.py", "flor": flor}
        with active_session(session):
            exec(compile(source, "train.py", "exec"), namespace)  # noqa: S102
            session.commit(f"version {version}")


def test_parallel_replay_scaling(benchmark, make_session):
    serial_session = make_session("t4_serial")
    _record_versions(serial_session)
    serial = HindsightEngine(serial_session).backfill(
        "train.py", new_source=_new_source(), parallelism="serial"
    )

    parallel_session = make_session("t4_parallel")
    _record_versions(parallel_session)
    parallel = benchmark.pedantic(
        lambda: HindsightEngine(parallel_session).backfill(
            "train.py",
            new_source=_new_source(),
            parallelism="process",
            max_workers=WORKERS,
        ),
        rounds=1,
        iterations=1,
    )

    speedup = serial.wall_seconds / parallel.wall_seconds if parallel.wall_seconds else float("inf")
    report(
        "T4: serial vs. process-parallel multiversion replay",
        [
            {
                "mode": "serial",
                "versions": VERSIONS,
                "seconds": serial.wall_seconds,
                "new_records": serial.new_records,
            },
            {
                "mode": f"process pool ({WORKERS} workers)",
                "versions": VERSIONS,
                "seconds": parallel.wall_seconds,
                "new_records": parallel.new_records,
                "speedup_x": speedup,
            },
        ],
    )
    # Both modes materialize identical data, and parallel replay is not slower.
    assert parallel.new_records == serial.new_records
    assert parallel.versions_replayed == serial.versions_replayed == VERSIONS
    assert parallel.wall_seconds < serial.wall_seconds * 1.2
