"""F6 — Figure 6: the human-in-the-loop feedback routes.

Simulates expert review sessions posting corrected page colors through the
web application and measures the cost of a feedback round plus the
``get_colors`` query path (dataframe join + latest + fallback).
"""

from __future__ import annotations

from conftest import report

from repro.mlops import LabelStore
from repro.workloads import PipelineWorkload


def test_figure6_feedback_loop(benchmark, make_session, tmp_path):
    session = make_session("f6")
    workload = PipelineWorkload(documents=6, max_pages=6, epochs=1, seed=6)
    executor, pipeline = workload.build_executor(session, tmp_path / "build")
    executor.build("run")
    app = pipeline.state.app
    client = app.test_client()
    documents = pipeline.state.corpus.document_names()

    def expert_round():
        saved = 0
        for name in documents[:4]:
            colors = list(range(len(pipeline.state.corpus.get(name))))
            response = client.post("/save_colors", json_body={"pdf_name": name, "colors": colors})
            assert response.status == 200
            saved += response.json()["count"]
        return saved

    saved = benchmark.pedantic(expert_round, rounds=1, iterations=1)

    # get_colors reflects the corrections for reviewed documents and falls
    # back to derived colors for the rest.
    reviewed = app.get_colors(documents[0])
    unreviewed = app.get_colors(documents[-1])
    store = LabelStore(session, filename="app.py")
    coverage = store.coverage("page_color", documents)

    report(
        "F6: feedback round",
        [
            {
                "labels_saved": saved,
                "reviewed_docs": 4,
                "coverage": coverage["coverage"],
                "reviewed_colors": str(reviewed),
                "unreviewed_colors": str(unreviewed),
            }
        ],
    )
    assert saved == sum(len(pipeline.state.corpus.get(n)) for n in documents[:4])
    assert reviewed == list(range(len(pipeline.state.corpus.get(documents[0]))))
    assert coverage["human_labelled"] == 4
