"""T2 — Replay latency vs. full re-execution.

The paper claims hindsight queries are answered "without the need for full
re-execution" via checkpoint seeking.  This benchmark records a training
script with an expensive per-epoch body, then materializes a new statement
for only the final epoch in two ways:

* baseline: replay every iteration (equivalent to re-running the script),
* differential: replay with ``ReplayPlan.only(epoch=[last])``.

Expected shape: differential replay executes roughly ``1/N`` of the epochs
(plus the checkpoint-bridging epochs) and is correspondingly faster.
"""

from __future__ import annotations

import textwrap

import pytest
from conftest import report

from repro import HindsightEngine, ReplayPlan, active_session, flor
from repro.core.checkpoint import EveryIterationPolicy

EPOCHS = 12
WORK_PER_EPOCH = 4000  # inner busy-loop units; keeps the benchmark CPU-bound

SCRIPT = textwrap.dedent(
    f"""
    state = {{"w": 0.0}}
    with flor.checkpointing(state=state):
        for epoch in flor.loop("epoch", range({EPOCHS})):
            acc = 0.0
            for i in range({WORK_PER_EPOCH}):
                acc += (i % 7) * 0.001
            state["w"] += acc
            flor.log("loss", 1.0 / (1.0 + state["w"]))
    """
).strip()

NEW_SCRIPT = SCRIPT.replace(
    'flor.log("loss", 1.0 / (1.0 + state["w"]))',
    'flor.log("loss", 1.0 / (1.0 + state["w"]))\n        flor.log("weight", state["w"])',
)


@pytest.fixture()
def recorded(make_session):
    session = make_session("t2", checkpoint_policy=EveryIterationPolicy())
    (session.config.root / "train.py").write_text(SCRIPT)
    session.track("train.py")
    namespace = {"__file__": "train.py", "flor": flor}
    with active_session(session):
        exec(compile(SCRIPT, "train.py", "exec"), namespace)  # noqa: S102
        session.commit("recorded run")
    return session


def test_replay_speedup(benchmark, recorded):
    engine = HindsightEngine(recorded)

    full = engine.backfill("train.py", new_source=NEW_SCRIPT)
    focused = benchmark.pedantic(
        lambda: engine.backfill(
            "train.py",
            new_source=NEW_SCRIPT,
            plan=ReplayPlan.only(epoch=[EPOCHS - 1]),
        ),
        rounds=1,
        iterations=1,
    )

    speedup = full.wall_seconds / focused.wall_seconds if focused.wall_seconds else float("inf")
    report(
        "T2: full replay vs. differential replay of the last epoch",
        [
            {
                "mode": "full replay",
                "epochs_executed": full.iterations_executed,
                "seconds": full.wall_seconds,
            },
            {
                "mode": "differential (epoch 11 only)",
                "epochs_executed": focused.iterations_executed,
                "seconds": focused.wall_seconds,
                "speedup_x": speedup,
            },
        ],
    )
    # Shape: the differential replay touches far fewer iterations.
    assert focused.iterations_executed <= 2
    assert focused.iterations_skipped >= EPOCHS - 2
    assert full.iterations_executed == EPOCHS
