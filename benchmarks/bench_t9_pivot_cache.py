"""T9 — Materialized pivot views: warm/incremental vs. cold query latency.

T5 established that a from-scratch ``flor.dataframe`` grows linearly with
log volume — every read pays O(total history).  The query engine
(:mod:`repro.query`) amortizes that: the pivoted view is materialized once,
repeated reads return it outright (warm), and appends merge only the delta
(incremental, re-pivoting just the touched runs).  This benchmark measures
all three tiers at the **largest T5 scale** (8 runs × 500 loops × 4 names)
and asserts the headline claims:

* a warm read and a small-append incremental read are each **≥ 5× faster**
  than a cold rebuild;
* the cached frame is **equal** to a from-scratch rebuild, before and after
  every append (the cache must be invisible except in latency);
* through the service layer, an ingest → read cycle invalidates and
  refreshes the shard's views end-to-end.
"""

from __future__ import annotations

import time

import pytest
from conftest import report

from repro.core.dataframe_view import build_dataframe
from repro.relational.records import LogRecord, LoopRecord
from repro.workloads import LoggingWorkload

#: (runs, loops) sweep; the largest entry is the largest T5 scale, where the
#: speedup floor is asserted.  The smallest is cheap enough for CI smoke.
SCALES = [(2, 100), (8, 500)]
FULL_SCALE = SCALES[-1]
NAMES = ("metric_0", "metric_1", "metric_2")
#: Speedup floor for warm and small-append incremental reads at FULL_SCALE.
SPEEDUP_FLOOR = 5.0


def _timed(fn, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _append_run(session, tstamp: str, loops: int) -> int:
    """Append one fresh run of `loops` epochs directly (as ingestion would)."""
    loop_rows, log_rows = [], []
    for i in range(loops):
        ctx = i + 1
        loop_rows.append(
            LoopRecord(session.projid, tstamp, "train.py", ctx, 0, "epoch", i, str(i))
        )
        for v in range(4):
            log_rows.append(
                LogRecord.create(
                    session.projid, tstamp, "train.py", ctx, f"metric_{v}", i + v * 0.01
                )
            )
    session.loops.add_many(loop_rows)
    session.logs.add_many(log_rows)
    return len(log_rows)


@pytest.mark.parametrize("runs,loops", SCALES, ids=[f"{r}x{l}" for r, l in SCALES])
def test_warm_and_incremental_vs_cold(benchmark, make_session, runs, loops):
    session = make_session(f"t9_{runs}_{loops}")
    workload = LoggingWorkload(runs=runs, loops_per_run=loops, values_per_loop=4)
    workload.populate(session)
    engine = session.query

    def rebuild():
        return build_dataframe(session.db, session.projid, list(NAMES))

    cold_s, rebuilt = _timed(rebuild)

    # Prime the view; the cached result must equal the from-scratch rebuild.
    cached = engine.dataframe(*NAMES)
    assert cached.equals(rebuilt), "cached pivot differs from a cold rebuild"

    warm_s, warm_frame = _timed(lambda: engine.dataframe(*NAMES), repeats=5)
    benchmark.pedantic(lambda: engine.dataframe(*NAMES), rounds=3, iterations=1)
    assert warm_frame.equals(rebuilt)

    # Small append (one fresh 5-epoch run): the realistic "training just
    # logged a bit more" shape — the refresh touches one run only.
    small_delta = _append_run(session, "2025-02-01T00:00:00.000001", loops=5)
    incr_small_s, incr_frame = _timed(lambda: engine.dataframe(*NAMES), repeats=1)
    assert incr_frame.equals(rebuild()), "incremental merge diverged from rebuild"

    # Full-run append: delta cost scales with the delta, not with history;
    # reported for shape, asserted only to beat cold.
    run_delta = _append_run(session, "2025-02-02T00:00:00.000001", loops=loops)
    incr_run_s, incr_frame = _timed(lambda: engine.dataframe(*NAMES), repeats=1)
    assert incr_frame.equals(rebuild()), "incremental merge diverged from rebuild"

    report(
        f"T9: pivot over {workload.record_count} log records ({runs}x{loops})",
        [
            {"tier": "cold rebuild", "ms": cold_s * 1e3, "delta_records": 0},
            {"tier": "warm hit", "ms": warm_s * 1e3, "delta_records": 0},
            {"tier": "incremental (small)", "ms": incr_small_s * 1e3, "delta_records": small_delta},
            {"tier": "incremental (full run)", "ms": incr_run_s * 1e3, "delta_records": run_delta},
        ],
    )
    assert engine.stats.incremental_refreshes >= 2
    if (runs, loops) == FULL_SCALE:
        assert cold_s >= SPEEDUP_FLOOR * warm_s, (
            f"warm read only {cold_s / warm_s:.1f}x faster than cold rebuild"
        )
        assert cold_s >= SPEEDUP_FLOOR * incr_small_s, (
            f"small-append incremental read only {cold_s / incr_small_s:.1f}x faster than cold"
        )
        assert cold_s > incr_run_s, "even a full-run delta must beat a full rebuild"


def test_service_ingest_read_cycle_invalidates_cache(benchmark, tmp_path):
    """End-to-end through HTTP routes: reads stay warm until ingestion writes."""
    from repro.service import FlorService
    from repro.webapp.framework import TestClient

    service = FlorService(tmp_path / "t9_service", flush_size=32, flush_interval=None)
    client = TestClient(service.app())

    def ingest(run: int, count: int = 8) -> None:
        payload = {
            "filename": "train.py",
            "records": [
                {
                    "name": "metric_0",
                    "value": run + i * 0.01,
                    "ctx_id": 0,
                    "tstamp": f"2025-03-{run + 1:02d}T00:00:00",
                }
                for i in range(count)
            ],
        }
        assert client.post("/projects/bench/logs", json_body=payload).ok

    def read() -> dict:
        response = client.get("/projects/bench/dataframe?names=metric_0")
        assert response.ok
        return response.json()

    try:
        ingest(0)
        first = benchmark.pedantic(read, rounds=3, iterations=1)
        assert first["rows"] == 1
        assert read() == first  # warm repeat

        with service.pool.checkout("bench") as shard:
            stats = shard.session.query.stats.as_dict()
        assert stats["cold_builds"] == 1
        assert stats["fast_hits"] + stats["warm_hits"] >= 1

        ingest(1)  # a new run arrives through the ingestion queue
        second = read()
        assert second["rows"] == 2

        with service.pool.checkout("bench") as shard:
            stats = shard.session.query.stats.as_dict()
            rebuilt = build_dataframe(shard.session.db, shard.session.projid, ["metric_0"])
            served = shard.session.dataframe("metric_0")
        assert stats["cold_builds"] == 1, "ingest must refresh, not rebuild, the view"
        assert stats["incremental_refreshes"] >= 1
        assert served.equals(rebuilt)
        report(
            "T9: service ingest -> read cycle",
            [{"reads": stats["lookups"], "cold": stats["cold_builds"],
              "incremental": stats["incremental_refreshes"],
              "fast_hits": stats["fast_hits"], "warm_hits": stats["warm_hits"]}],
        )
    finally:
        service.close()
