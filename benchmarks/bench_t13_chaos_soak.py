"""T13 — Chaos soak: mixed traffic under continuous faults, invariant-checked.

Two measurements of the durability story end to end:

* **In-process soak** — :class:`repro.testing.ChaosSoak` storms a
  :class:`FlorService` built over fault-wrapped stores (``database is
  locked`` contention, slow I/O, a skewed job-lease clock) with the
  scenario zoo: agent-session traces, multi-project fan-out and a
  hindsight backfill draining on an embedded runner.  Every cycle ends in
  a close/reopen recovery whose invariants are asserted **at every
  scale**: zero lost sealed rows, monotone ``logs.seq`` watermarks, zero
  double-replayed job versions, recovery under the bound.  The soak is
  seeded; a red run prints ``REPRO_CHAOS_SEED=<n>`` for exact replay.
* **SIGKILL recovery** — a real ``repro serve --job-workers`` subprocess
  is killed with SIGKILL at named barriers while a ledger-keeping client
  runs the seal protocol (mark → drop-counter probe → primary read →
  probe).  After each kill the client gives the restarted server no
  continuity credit: it forces a repair (resubmits every unsealed batch)
  before sealing again.  Asserted at every scale: no sealed row is ever
  lost.  At full scale: mean kill-to-healthy recovery stays under the
  bound.

Perf assertions fire at full scale only (T5/T9/T10's convention); CI's
chaos-smoke job records the smoke-scale trajectory in ``BENCH_*.json``.
"""

from __future__ import annotations

import os
import time
from urllib.parse import quote

import pytest
from conftest import report

from repro.testing import (
    SEED_ENV_VAR,
    AckLedger,
    ChaosSoak,
    FaultPlan,
    ServerProcess,
    assert_invariants,
)

#: Deterministic by default; export REPRO_CHAOS_SEED to replay a red run's
#: exact fault schedule (the seed every failure message prints).
SOAK_SEED = int(os.environ.get(SEED_ENV_VAR) or 20260807)

SOAK_SCALES = {
    "smoke": {
        "cycles": 1,
        "cycle_seconds": 0.6,
        "agent_tenants": 1,
        "fanout_tenants": 2,
        "ingest_threads": 1,
        "pool_capacity": 3,
    },
    "full": {
        "cycles": 3,
        "cycle_seconds": 2.0,
        "agent_tenants": 2,
        "fanout_tenants": 3,
        "ingest_threads": 2,
        "pool_capacity": 4,
    },
}

KILL_SCALES = {"smoke": 2, "full": 4}  # SIGKILL rounds
KILL_BATCHES = 6  # batches posted per round
KILL_BATCH_ROWS = 5
RECOVERY_BOUND_SECONDS = 30.0


# ------------------------------------------------------------ in-process soak
@pytest.mark.parametrize("scale", sorted(SOAK_SCALES))
def test_soak_invariants_hold_under_continuous_faults(benchmark, tmp_path, scale):
    plan = FaultPlan(
        seed=SOAK_SEED,
        locked_rate=0.08,
        slow_rate=0.05,
        skew_rate=0.2,
        slow_seconds=0.002,
        max_skew_seconds=15.0,
    )
    soak = ChaosSoak(
        tmp_path / "root",
        plan,
        recovery_bound_seconds=RECOVERY_BOUND_SECONDS,
        **SOAK_SCALES[scale],
    )
    soak_report = benchmark.pedantic(soak.run, rounds=1, iterations=1)
    report(f"T13: chaos soak, {scale} scale ({plan.describe()})", soak_report.as_rows())
    # Correctness is scale-independent: the invariants hold even in smoke.
    assert_invariants(soak_report.violations, plan)
    assert soak_report.cycles == SOAK_SCALES[scale]["cycles"]
    assert soak_report.sealed_rows > 0
    assert sum(soak_report.fault_stats["checked"].values()) > 0
    if scale == "full":
        # The storm must actually have been stormy, and recovery bounded.
        assert sum(soak_report.fault_stats["fired"].values()) > 0, (
            "no fault fired at full scale; the soak ran fair-weather"
        )
        assert soak_report.max_recovery_seconds < RECOVERY_BOUND_SECONDS


# ------------------------------------------------------------ SIGKILL rounds
def _post_batch(server: ServerProcess, ledger: AckLedger, project: str, values) -> None:
    server.post(
        f"/projects/{project}/logs",
        {
            "filename": "ingest.py",
            "records": [{"name": "metric", "value": v, "ctx_id": 0} for v in values],
        },
    )
    ledger.record(project, "metric", values)


def _seal(server: ServerProcess, ledger: AckLedger, project: str, state: dict) -> bool:
    """The client-side seal protocol (see docs/testing.md)."""
    mark = ledger.mark(project)
    before = server.get(f"/projects/{project}/stats")["dropped_rows_total"]
    if before != state.get(project, 0):
        state[project] = before
        return False
    server.get(f"/projects/{project}/dataframe?names=metric&primary=1")
    after = server.get(f"/projects/{project}/stats")["dropped_rows_total"]
    if after != before:
        state[project] = after
        return False
    ledger.seal_through(mark, project)
    state[project] = after
    return True


def _stored_values(server: ServerProcess, project: str) -> set[str]:
    query = quote("SELECT value FROM logs WHERE value_name = 'metric'")
    body = server.get(f"/projects/{project}/sql?q={query}")
    return {str(record["value"]) for record in body["records"]}


@pytest.mark.parametrize("scale", sorted(KILL_SCALES))
def test_sigkill_rounds_lose_no_sealed_rows(benchmark, tmp_path, scale):
    rounds = KILL_SCALES[scale]
    root = tmp_path / "root"
    root.mkdir()
    ledger = AckLedger()
    project = "alpha"

    def run_rounds():
        recoveries = []
        sealed_per_round = []
        server = ServerProcess(root)
        server.start()
        try:
            server.wait_healthy()
            for round_ in range(rounds):
                state: dict = {}
                # A fresh process starts its drop counter at 0 and, having
                # been SIGKILL'd, earns no continuity credit: resubmit every
                # unsealed batch before sealing anything.
                for name, values in ledger.forget_unsealed(project):
                    _post_batch(server, ledger, project, list(values))
                for batch in range(KILL_BATCHES):
                    values = [
                        f"k{round_}.b{batch}.r{r}" for r in range(KILL_BATCH_ROWS)
                    ]
                    _post_batch(server, ledger, project, values)
                    if batch % 2 == 0:
                        _seal(server, ledger, project, state)
                _seal(server, ledger, project, state)
                sealed_per_round.append(ledger.counts()["sealed_rows"])
                server.kill9(barrier=f"mid_ingest_round{round_}")
                started = time.perf_counter()
                server = ServerProcess(root)
                server.start()
                server.wait_healthy(projects=(project,))
                recoveries.append(time.perf_counter() - started)
                stored = _stored_values(server, project)
                sealed = ledger.sealed_values(project, "metric")
                lost = sealed - stored
                assert not lost, (
                    f"round {round_}: {len(lost)} sealed row(s) lost after "
                    f"SIGKILL: {sorted(lost)[:5]}"
                )
            return recoveries, sealed_per_round, server
        except BaseException:
            server.terminate()
            raise

    recoveries, sealed_per_round, server = benchmark.pedantic(
        run_rounds, rounds=1, iterations=1
    )
    try:
        # Final at-least-once sweep: after resubmitting the tail, nothing
        # acked is missing at all — sealed or not.
        for name, values in ledger.forget_unsealed(project):
            _post_batch(server, ledger, project, list(values))
        _seal(server, ledger, project, {})
        stored = _stored_values(server, project)
        acked = {
            f"k{round_}.b{batch}.r{r}"
            for round_ in range(rounds)
            for batch in range(KILL_BATCHES)
            for r in range(KILL_BATCH_ROWS)
        }
        missing = acked - stored
        assert_invariants(
            [f"{len(missing)} acked row(s) missing after repair: {sorted(missing)[:5]}"]
            if missing
            else []
        )
    finally:
        server.terminate()
    mean_recovery = sum(recoveries) / len(recoveries)
    report(
        f"T13: SIGKILL recovery, {scale} scale",
        [
            {
                "rounds": rounds,
                "sealed_rows": sealed_per_round[-1],
                "mean_recovery_s": mean_recovery,
                "max_recovery_s": max(recoveries),
            }
        ],
    )
    if scale == "full":
        assert mean_recovery < RECOVERY_BOUND_SECONDS, (
            f"mean kill-to-healthy recovery {mean_recovery:.2f}s exceeds "
            f"{RECOVERY_BOUND_SECONDS}s"
        )
