"""T15 — Multi-tenant QoS: admission control isolates cold tenants from hot ones.

A 10:1 hot/cold tenant mix drives the QoS-enabled service: the hot tenant
hammers the bulk-append endpoint from several threads while the cold
tenant trickles requests.  With a rate policy on the hot tenant the
admission layer answers its excess with ``429`` + ``Retry-After`` (never
queuing it), so the cold tenant's p99 append latency stays within an
asserted bound instead of queueing behind the flood.

Claims asserted:

* the hot tenant is actually throttled (positive 429 count) while the
  cold tenant is never throttled and sees zero errors;
* cold-tenant p99 append latency stays under ``COLD_P99_BOUND_S``;
* with QoS disabled the admission hook is a no-op — the T8-style
  throughput run shows no throttles and no measurable regression versus
  a QoS-enabled-but-unlimited service (the policy table alone must not
  tax the hot path).
"""

from __future__ import annotations

import threading
import time

from conftest import report

from repro.qos import PolicyRule
from repro.service import FlorService
from repro.webapp.framework import TestClient
from repro.workloads import ServiceLoadReport, ServiceWorkload

HOT_THREADS = 4
HOT_REQUESTS_PER_THREAD = 60
COLD_REQUESTS = 40
#: Sustained rate allowed to the hot tenant — far below its offered load.
HOT_RATE = 40.0
HOT_BURST = 10.0
#: The fairness bound: cold-tenant p99 append latency with the hot tenant
#: flooding.  In-process transport, so the bound is pure service time.
COLD_P99_BOUND_S = 0.25


class _TenantDriver(threading.Thread):
    """Posts ``requests`` appends for one tenant, honoring 429 backoff."""

    def __init__(self, client, project: str, requests: int, pause: float = 0.0):
        super().__init__(daemon=True)
        self.client = client
        self.url = f"/projects/{project}/logs"
        self.requests = requests
        self.pause = pause
        self.latencies: list[float] = []
        self.throttles = 0
        self.gave_up = 0  #: still 429 after the retry budget — client's choice
        self.errors = 0  #: non-throttle failures; always a bug

    def run(self) -> None:
        for i in range(self.requests):
            payload = {"records": [{"name": "metric", "value": float(i), "ctx_id": i}]}
            attempt = 0
            while True:
                started = time.perf_counter()
                response = self.client.post(self.url, json_body=payload)
                if response.status == 429 and attempt < 6:
                    self.throttles += 1
                    retry_after = float(response.headers.get("Retry-After", "0.05"))
                    time.sleep(min(retry_after, 0.25))
                    attempt += 1
                    continue
                self.latencies.append(time.perf_counter() - started)
                if response.status == 429:
                    self.gave_up += 1
                elif not response.ok:
                    self.errors += 1
                break
            if self.pause:
                time.sleep(self.pause)

    def percentile(self, p: float) -> float:
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, max(0, int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]


def _run_mix(tmp_path, name: str, *, qos: bool):
    service = FlorService(
        tmp_path / name, flush_size=32, flush_interval=None, qos=qos
    )
    try:
        if qos:
            service.policies.put(PolicyRule(selector="hot", rate=HOT_RATE, burst=HOT_BURST))
        client = TestClient(service.app())
        hot = [
            _TenantDriver(client, "hot", HOT_REQUESTS_PER_THREAD)
            for _ in range(HOT_THREADS)
        ]
        cold = _TenantDriver(client, "cold", COLD_REQUESTS, pause=0.005)
        for driver in (*hot, cold):
            driver.start()
        for driver in (*hot, cold):
            driver.join()
        hot_stats = {
            "throttles": sum(d.throttles for d in hot),
            "gave_up": sum(d.gave_up for d in hot),
            "errors": sum(d.errors for d in hot),
        }
        snapshot = service.admission.snapshot() if service.admission else None
        return hot_stats, cold, snapshot
    finally:
        service.close()


def test_cold_tenant_p99_bounded_while_hot_is_throttled(benchmark, tmp_path):
    """10:1 hot/cold mix: hot throttled with 429s, cold p99 within bound."""
    hot_stats, cold, snapshot = benchmark.pedantic(
        lambda: _run_mix(tmp_path, "t15_qos", qos=True), rounds=1, iterations=1
    )
    cold_p99 = cold.percentile(99)
    report(
        "T15: hot/cold isolation under admission control (10:1 offered load)",
        [
            {
                "tenant": "hot",
                "throttles": hot_stats["throttles"],
                "gave_up": hot_stats["gave_up"],
                "errors": hot_stats["errors"],
                "admitted": snapshot["tenants"]["hot"]["admitted"],
            },
            {
                "tenant": "cold",
                "throttles": cold.throttles,
                "gave_up": cold.gave_up,
                "errors": cold.errors,
                "admitted": snapshot["tenants"]["cold"]["admitted"],
                "p99_ms": cold_p99 * 1e3,
            },
        ],
    )
    assert hot_stats["throttles"] > 0, "hot tenant was never throttled — the policy did nothing"
    assert hot_stats["errors"] == 0, "hot tenant saw non-throttle failures"
    assert (
        cold.throttles == 0 and cold.gave_up == 0 and cold.errors == 0
    ), "cold tenant was collateral damage"
    assert cold_p99 < COLD_P99_BOUND_S, (
        f"cold-tenant p99 {cold_p99 * 1e3:.1f}ms breached the "
        f"{COLD_P99_BOUND_S * 1e3:.0f}ms fairness bound"
    )
    assert snapshot["throttled"] >= hot_stats["throttles"]


def test_qos_off_has_no_throughput_tax(benchmark, tmp_path):
    """The T8 regression guard: disabled QoS must not slow the append path.

    ``qos=False`` leaves ``service.admission`` as ``None`` and the hook
    returns immediately; an enabled-but-unlimited service pays one bucket
    lookup per request.  Neither run may throttle, and the disabled run
    must not fall measurably behind the enabled one (it runs strictly
    less code).
    """

    def drive(name: str, *, qos: bool) -> ServiceLoadReport:
        service = FlorService(
            tmp_path / name, flush_size=16, flush_interval=None, qos=qos
        )
        try:
            workload = ServiceWorkload(
                clients=4, requests_per_client=40, records_per_request=16, projects=2
            )
            return workload.run(TestClient(service.app()))
        finally:
            service.close()

    unlimited = drive("t15_qos_on", qos=True)
    plain = benchmark.pedantic(
        lambda: drive("t15_qos_off", qos=False), rounds=1, iterations=1
    )
    report(
        "T15: append throughput with QoS off vs on-but-unlimited",
        [
            {
                "mode": mode,
                "records_s": result.records_per_second,
                "throttles": result.throttles,
                "errors": result.errors,
                "p99_ms": result.percentile(99) * 1e3,
            }
            for mode, result in (("off", plain), ("on-unlimited", unlimited))
        ],
    )
    assert plain.throttles == 0 and plain.errors == 0
    assert unlimited.throttles == 0 and unlimited.errors == 0
    # Loose floor: catches a catastrophic regression (accidentally running
    # admission work with QoS off), not benchmark noise.
    assert plain.records_per_second >= 0.5 * unlimited.records_per_second, (
        f"QoS-off throughput {plain.records_per_second:.0f} rec/s fell behind "
        f"the QoS-on run ({unlimited.records_per_second:.0f} rec/s)"
    )
