"""F4 — Figure 4: the seven-target PDF-parser pipeline end to end.

Regenerates the demo pipeline: the Makefile of Figure 4 (demux → featurize →
train → infer → run, with the web app serving feedback) executed by the
incremental build substrate, then a second build showing full caching.
"""

from __future__ import annotations

from conftest import report

from repro.workloads import PipelineWorkload


def test_figure4_full_pipeline(benchmark, make_session, tmp_path):
    session = make_session("f4")
    workload = PipelineWorkload(documents=5, max_pages=6, epochs=2, seed=4)
    executor, pipeline = workload.build_executor(session, tmp_path / "build")

    first = benchmark.pedantic(lambda: executor.build("run"), rounds=1, iterations=1)
    second = executor.build("run")

    rows = [
        {
            "build": "first",
            "executed": len(first.executed),
            "cached": len(first.cached),
            "stages": ",".join(first.executed),
        },
        {
            "build": "second",
            "executed": len(second.executed),
            "cached": len(second.cached),
            "stages": ",".join(second.executed) or "(none)",
        },
    ]
    report("F4: PDF-parser pipeline builds", rows)

    assert first.executed == ["process_pdfs", "featurize", "train", "infer", "run"]
    assert second.executed == []

    # The web app serves the processed corpus.
    client = pipeline.state.app.test_client()
    assert client.get("/").ok
    name = pipeline.state.corpus.document_names()[0]
    assert client.get(f"/view-pdf?name={name}").ok

    # Model-registry role: inference picked the best recorded checkpoint.
    assert pipeline.registry.best("recall") is not None
