"""A2 — Ablation: AST-anchored propagation vs. naive line-number propagation.

DESIGN.md's propagation design anchors injected statements to matched source
lines.  The strawman alternative inserts at the same absolute line number.
This ablation evolves a script through increasingly invasive refactorings and
measures, for each strategy, how often the injected statement lands in the
correct position (immediately after the anchor statement, inside the loop
body) and how often the patched file still parses.
Expected shape: anchored propagation stays correct as refactorings grow;
line-number propagation degrades.
"""

from __future__ import annotations

import ast

from conftest import report

from repro.core.propagation import propagate_by_line_number, propagate_statements
from repro.workloads import VersionedScriptWorkload

VERSIONS = 8


def _is_correctly_placed(source: str) -> bool:
    """The new 'weight' log must sit directly after the 'loss' log at equal depth."""
    lines = source.splitlines()
    weight = [i for i, line in enumerate(lines) if '"weight"' in line]
    loss = [i for i, line in enumerate(lines) if '"loss"' in line]
    if not weight or not loss:
        return False
    w, l = weight[0], loss[0]
    same_indent = (len(lines[w]) - len(lines[w].lstrip())) == (len(lines[l]) - len(lines[l].lstrip()))
    return w == l + 1 and same_indent


def test_propagation_strategy_ablation(benchmark, make_session):
    workload = VersionedScriptWorkload(versions=VERSIONS, epochs=2, steps=2, refactor=True)
    new_source = workload.hindsight_source()
    old_sources = [workload.source_for_version(v) for v in range(VERSIONS)]

    def run_both():
        anchored, baseline = [], []
        for old in old_sources:
            anchored.append(propagate_statements(old, new_source))
            baseline.append(propagate_by_line_number(old, new_source))
        return anchored, baseline

    anchored_results, baseline_results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def score(results):
        parses = correct = 0
        for result in results:
            try:
                ast.parse(result.patched_source)
                parses += 1
            except SyntaxError:
                continue
            if _is_correctly_placed(result.patched_source):
                correct += 1
        return parses, correct

    anchored_parses, anchored_correct = score(anchored_results)
    baseline_parses, baseline_correct = score(baseline_results)

    report(
        "A2: propagation strategy ablation over refactored versions",
        [
            {
                "strategy": "AST-anchored (ours)",
                "versions": VERSIONS,
                "parses": anchored_parses,
                "correctly_placed": anchored_correct,
            },
            {
                "strategy": "absolute line number (baseline)",
                "versions": VERSIONS,
                "parses": baseline_parses,
                "correctly_placed": baseline_correct,
            },
        ],
    )
    # Shape: the anchored strategy places every statement correctly; the
    # baseline loses placements as the refactorings shift line numbers
    # (version 0 is unshifted, so it gets at least that one right).
    assert anchored_correct == VERSIONS
    assert baseline_correct < VERSIONS
