"""T7 — Parallel build speedup on a synthetic wide DAG.

The Figure 2 pipeline is a chain, so its critical path hides the scheduler;
this benchmark uses :class:`WideDagWorkload` — ``width`` independent stages
fanning into one goal — where a wavefront scheduler with ``jobs=N`` should
approach an ``N``-fold speedup over ``jobs=1``.  Each stage sleeps for a
fixed interval (I/O-shaped work that releases the GIL), so measured time is
pure scheduling behaviour.
"""

from __future__ import annotations

import time

from conftest import report

from repro.workloads import WideDagWorkload

WIDTH = 16
STAGE_SECONDS = 0.02
JOBS = 4


def test_parallel_build_speedup(benchmark, tmp_path):
    workload = WideDagWorkload(width=WIDTH, stage_seconds=STAGE_SECONDS)

    serial_executor = workload.build_executor(tmp_path / "serial", jobs=1)
    start = time.perf_counter()
    serial = serial_executor.build("all")
    serial_seconds = time.perf_counter() - start
    assert len(serial.executed) == WIDTH + 1

    parallel_executor = workload.build_executor(tmp_path / "parallel", jobs=JOBS)
    start = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: parallel_executor.build("all", force=True), rounds=1, iterations=1
    )
    parallel_seconds = time.perf_counter() - start
    assert len(parallel.executed) == WIDTH + 1
    assert parallel.executed[-1] == "all"  # the fan-in goal completes last

    speedup = serial_seconds / parallel_seconds
    report(
        f"T7: {WIDTH}-wide DAG, {STAGE_SECONDS * 1000:.0f}ms per stage",
        [
            {"jobs": 1, "stages": len(serial.executed), "seconds": serial_seconds, "speedup": 1.0},
            {
                "jobs": JOBS,
                "stages": len(parallel.executed),
                "seconds": parallel_seconds,
                "speedup": speedup,
            },
        ],
    )
    # Ideal speedup is JOBS; require at least half of it to absorb pool
    # start-up and scheduling overhead on loaded CI machines.
    assert speedup >= JOBS / 2, f"jobs={JOBS} build not faster: {speedup:.2f}x"
