"""Tests for the PDF-parser feedback application (Figure 6)."""

from __future__ import annotations

import pytest

from repro.docs.corpus import generate_corpus
from repro.errors import WebAppError
from repro.webapp.pdf_app import APP_FILENAME, PdfParserApp, create_app


@pytest.fixture()
def corpus():
    return generate_corpus(num_documents=3, min_pages=3, max_pages=5, seed=4)


@pytest.fixture()
def app(free_session, corpus):
    """App over a session that already holds featurization output."""
    session = free_session
    for doc in session.loop("document", [d.name for d in corpus], filename="featurize.py"):
        document = corpus.get(doc)
        for page in session.loop("page", range(len(document)), filename="featurize.py"):
            session.log(
                "first_page", 1 if document.pages[page].is_first_page else 0, filename="featurize.py"
            )
    session.commit("featurize")
    return create_app(session, corpus)


@pytest.fixture()
def client(app):
    return app.test_client()


class TestRoutes:
    def test_home_lists_all_documents(self, app, client):
        response = client.get("/")
        assert response.ok
        for name in app.pdf_names:
            assert name in response.body

    def test_view_pdf_renders_pages_and_colors(self, app, client):
        name = app.pdf_names[0]
        response = client.get(f"/view-pdf?name={name}")
        assert response.ok
        assert name in response.body
        assert "color" in response.body

    def test_view_pdf_unknown_document_404(self, client):
        assert client.get("/view-pdf?name=ghost.pdf").status == 404
        assert client.get("/view-pdf").status == 404

    def test_save_colors_roundtrip(self, app, client):
        name = app.pdf_names[0]
        colors = [0, 0, 1]
        response = client.post("/save_colors", json_body={"pdf_name": name, "colors": colors})
        assert response.status == 200
        assert response.json()["message"] == "Colors saved"
        assert app.get_colors(name)[: len(colors)] == colors

    def test_save_colors_validates_payload(self, client):
        assert client.post("/save_colors", json_body={"colors": "not-a-list"}).status == 400
        assert client.post("/save_colors", json_body={"colors": ["a", "b"]}).status == 400


class TestGetColors:
    def test_fallback_colors_derived_from_first_page_flags(self, app):
        # No expert feedback yet: colors come from the cumulative first-page count.
        name = app.pdf_names[0]
        colors = app.get_colors(name)
        document = app.corpus.get(name)
        assert len(colors) == len(document)
        assert colors[0] == 0
        assert all(isinstance(c, int) for c in colors)

    def test_colors_without_any_logged_metadata(self, make_session, corpus):
        app = PdfParserApp(make_session("bare"), corpus)
        name = app.pdf_names[0]
        colors = app.get_colors(name)
        assert len(colors) == len(corpus.get(name))

    def test_expert_feedback_overrides_derived_colors(self, app):
        name = app.pdf_names[1]
        expected = list(range(len(app.corpus.get(name))))
        app.save_colors(name, expected)
        assert app.get_colors(name) == expected

    def test_newest_feedback_wins(self, app):
        name = app.pdf_names[0]
        length = len(app.corpus.get(name))
        app.save_colors(name, [0] * length)
        app.save_colors(name, [5] * length)
        assert app.get_colors(name) == [5] * length

    def test_unknown_document_raises(self, app):
        with pytest.raises(WebAppError):
            app.get_colors("ghost.pdf")
        with pytest.raises(WebAppError):
            app.save_colors("ghost.pdf", [0])


class TestProvenance:
    def test_feedback_recorded_with_app_filename_and_committed(self, app):
        name = app.pdf_names[0]
        epochs_before = len(app.session.ts2vid.all(app.session.projid))
        app.save_colors(name, [0, 1, 2])
        epochs_after = len(app.session.ts2vid.all(app.session.projid))
        assert epochs_after == epochs_before + 1
        records = [r for r in app.session.logs.all(app.session.projid) if r.value_name == "page_color"]
        assert records
        assert all(r.filename == APP_FILENAME for r in records)

    def test_feedback_is_joinable_with_featurization(self, app):
        name = app.pdf_names[0]
        app.save_colors(name, [3, 3, 4])
        frame = app.session.dataframe("first_page", "page_color")
        rows = frame[frame.document_value == name]
        assert not rows.empty
        assert set(rows["page_color"].dropna().to_list()) <= {3, 4}
