"""Tests for the minimal web framework."""

from __future__ import annotations

import pytest

from repro.errors import RouteNotFoundError, WebAppError
from repro.webapp.framework import (
    HttpError,
    JsonResponse,
    Request,
    Response,
    Router,
    TestClient,
    WebApp,
)


@pytest.fixture()
def app():
    application = WebApp("test")

    @application.route("/")
    def home(_request):
        return "<h1>home</h1>"

    @application.route("/items/<item_id>")
    def item(_request, item_id):
        return JsonResponse({"id": item_id})

    @application.route("/echo", methods=("POST",))
    def echo(request):
        return JsonResponse(request.get_json())

    @application.route("/fail")
    def fail(_request):
        raise HttpError(418, "teapot")

    @application.route("/tuple")
    def tuple_result(_request):
        return {"created": True}, 201

    return application


@pytest.fixture()
def client(app):
    return TestClient(app)


class TestRouter:
    def test_static_and_parameterized_resolution(self):
        router = Router()
        router.add("/a/b", lambda r: None)
        router.add("/docs/<name>", lambda r, name: None)
        _handler, params = router.resolve("GET", "/a/b")
        assert params == {}
        _handler, params = router.resolve("GET", "/docs/report.pdf")
        assert params == {"name": "report.pdf"}

    def test_method_mismatch_is_not_found(self):
        router = Router()
        router.add("/x", lambda r: None, methods=("POST",))
        with pytest.raises(RouteNotFoundError):
            router.resolve("GET", "/x")

    def test_routes_listing(self, app):
        listed = app.router.routes()
        assert ("GET", "/") in listed
        assert ("POST", "/echo") in listed


class TestRequestResponse:
    def test_json_parsing_and_errors(self):
        request = Request("POST", "/", body=b'{"a": 1}')
        assert request.get_json() == {"a": 1}
        assert Request("POST", "/", body=b"").get_json() == {}
        with pytest.raises(WebAppError):
            Request("POST", "/", body=b"{broken").get_json()

    def test_query_arg_access(self):
        request = Request("GET", "/view", query={"name": "a.pdf"})
        assert request.arg("name") == "a.pdf"
        assert request.arg("missing", "default") == "default"

    def test_response_ok_flag(self):
        assert Response(status=204).ok
        assert not Response(status=404).ok

    def test_json_response_roundtrip(self):
        response = JsonResponse({"x": [1, 2]})
        assert response.json() == {"x": [1, 2]}
        assert response.headers["Content-Type"] == "application/json"


class TestDispatch:
    def test_string_result_becomes_html_response(self, client):
        response = client.get("/")
        assert response.ok
        assert "home" in response.body
        assert response.headers["Content-Type"] == "text/html"

    def test_path_params_passed_to_handler(self, client):
        assert client.get("/items/42").json() == {"id": "42"}

    def test_post_json_roundtrip(self, client):
        assert client.post("/echo", json_body={"colors": [1, 2]}).json() == {"colors": [1, 2]}

    def test_query_string_parsed(self, app, client):
        @app.route("/search")
        def search(request):
            return JsonResponse({"q": request.arg("q")})

        assert client.get("/search?q=hello&x=1").json() == {"q": "hello"}

    def test_unknown_route_is_404(self, client):
        response = client.get("/nope")
        assert response.status == 404
        assert "error" in response.json()

    def test_http_error_maps_to_status(self, client):
        response = client.get("/fail")
        assert response.status == 418
        assert response.json()["error"] == "teapot"

    def test_tuple_result_sets_status(self, client):
        response = client.get("/tuple")
        assert response.status == 201
        assert response.json() == {"created": True}


class TestTemplates:
    def test_register_and_render(self, app):
        app.register_template("page.html", "<p>{{ message }}</p>")
        assert app.render_template("page.html", message="hi") == "<p>hi</p>"

    def test_unknown_template_raises(self, app):
        with pytest.raises(WebAppError):
            app.render_template("ghost.html")
