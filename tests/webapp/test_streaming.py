"""Streaming foundation tests: SSE framing, StreamingResponse, TestClient.sse."""

from __future__ import annotations

import pytest

from repro.webapp.framework import (
    SSEStream,
    StreamingResponse,
    TestClient,
    WebApp,
    iter_sse_events,
    sse_comment,
    sse_event,
)


class TestSSEFraming:
    def test_event_frame_shape(self):
        frame = sse_event({"a": 1}, event="log", id=7)
        assert frame == 'event: log\nid: 7\ndata: {"a": 1}\n\n'

    def test_bare_data_event(self):
        assert sse_event("hello") == "data: hello\n\n"

    def test_comment_frame(self):
        assert sse_comment() == ": keepalive\n\n"
        assert sse_comment("tail of alpha") == ": tail of alpha\n\n"

    def test_roundtrip_through_the_parser(self):
        frames = [sse_event({"n": i}, event="log", id=i) for i in range(3)]
        events = list(iter_sse_events(frames))
        assert [e.id for e in events] == ["0", "1", "2"]
        assert [e.json()["n"] for e in events] == [0, 1, 2]
        assert all(e.event == "log" for e in events)

    def test_parser_handles_chunks_split_mid_frame(self):
        whole = sse_event({"x": 1}, event="log", id=1) + sse_event({"x": 2}, event="log", id=2)
        # Worst-case transport: one byte per chunk.
        events = list(iter_sse_events(iter(list(whole))))
        assert [e.json()["x"] for e in events] == [1, 2]

    def test_parser_skips_comments_and_accepts_bytes(self):
        chunks = [sse_comment().encode(), sse_event("d", id=3).encode()]
        events = list(iter_sse_events(chunks))
        assert len(events) == 1
        assert events[0].data == "d"
        assert events[0].id == "3"


class TestStreamingResponse:
    def test_headers_default_to_sse(self):
        response = StreamingResponse(iter(["x"]))
        assert response.headers["Content-Type"] == "text/event-stream"
        assert response.headers["Cache-Control"] == "no-cache"

    def test_explicit_headers_win(self):
        response = StreamingResponse(iter(()), headers={"Content-Type": "text/plain"})
        assert response.headers["Content-Type"] == "text/plain"

    def test_close_propagates_to_the_generator(self):
        released = []

        def generate():
            try:
                yield "a"
                yield "b"
            finally:
                released.append(True)

        response = StreamingResponse(generate())
        assert next(response.chunks) == "a"
        response.close()
        assert released == [True]


class TestSSEStreamGuards:
    def test_max_events_stops_and_closes(self):
        closed = []

        def generate():
            try:
                i = 0
                while True:
                    i += 1
                    yield sse_event({"i": i}, id=i)
            finally:
                closed.append(True)

        stream = SSEStream(generate())
        events = stream.collect(max_events=3)
        assert [e.json()["i"] for e in events] == [1, 2, 3]
        assert closed == [True]

    def test_timeout_bounds_a_never_ending_stream(self):
        def generate():
            while True:
                yield sse_comment()  # keepalives only, no events

        events = SSEStream(generate()).collect(timeout=0.2)
        assert events == []


class TestClientStreaming:
    @pytest.fixture()
    def app(self):
        app = WebApp("streams")

        @app.route("/feed")
        def feed(_request):
            def generate():
                for i in range(5):
                    yield sse_event({"i": i}, event="tick", id=i)

            return StreamingResponse(generate())

        @app.route("/missing")
        def missing(_request):
            from repro.webapp.framework import HttpError

            raise HttpError(404, "nope")

        return app

    def test_sse_iterates_a_streaming_route_in_process(self, app):
        stream = TestClient(app).sse("/feed")
        assert stream.status == 200
        events = stream.collect()
        assert [e.json()["i"] for e in events] == [0, 1, 2, 3, 4]
        assert all(e.event == "tick" for e in events)

    def test_sse_wraps_error_responses_with_status(self, app):
        stream = TestClient(app).sse("/missing")
        assert stream.status == 404

    def test_get_headers_reach_the_handler(self, app):
        @app.route("/echo-header")
        def echo(request):
            from repro.webapp.framework import JsonResponse

            return JsonResponse({"last": request.headers.get("Last-Event-ID")})

        response = TestClient(app).get("/echo-header", headers={"Last-Event-ID": "42"})
        assert response.json() == {"last": "42"}
