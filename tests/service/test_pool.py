"""Tests for the sharded database pool (LRU eviction, reopen, locking)."""

from __future__ import annotations

import threading

import pytest

from repro.relational.records import LogRecord
from repro.service.pool import DatabasePool


@pytest.fixture()
def pool(tmp_path):
    pool = DatabasePool(tmp_path / "projects", capacity=2)
    yield pool
    pool.close()


def _log(shard, i: int) -> LogRecord:
    return LogRecord.create(
        projid=shard.session.projid,
        tstamp=shard.session.tstamp,
        filename="load.py",
        ctx_id=i,
        value_name="m",
        value=i,
    )


class TestLookup:
    def test_get_caches_the_handle(self, pool):
        first = pool.get("alpha")
        assert pool.get("alpha") is first
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_each_project_gets_its_own_database(self, pool, tmp_path):
        alpha = pool.get("alpha")
        beta = pool.get("beta")
        assert alpha.session.db is not beta.session.db
        assert (tmp_path / "projects" / "alpha" / ".flor" / "flor.db").exists()
        assert (tmp_path / "projects" / "beta" / ".flor" / "flor.db").exists()

    def test_invalid_capacity_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DatabasePool(tmp_path, capacity=0)


class TestEviction:
    def test_lru_evicts_the_coldest_shard(self, pool):
        alpha = pool.get("alpha")
        pool.get("beta")
        pool.get("alpha")  # alpha is now hot, beta cold
        pool.get("gamma")  # capacity 2 -> beta evicted
        assert pool.open_shards() == ["alpha", "gamma"]
        assert pool.stats.evictions == 1
        assert not alpha.closed

    def test_eviction_flushes_pending_records(self, pool):
        alpha = pool.get("alpha")
        alpha.queue.append(logs=[_log(alpha, 0), _log(alpha, 1)])
        assert alpha.queue.pending == 2
        pool.get("beta")
        pool.get("gamma")  # evicts alpha with queued records
        assert alpha.closed
        # Reopen: the acknowledged records survived the eviction.
        reopened = pool.get("alpha")
        assert reopened is not alpha
        assert reopened.session.db.count("logs") == 2
        assert pool.stats.reopens == 1

    def test_explicit_evict(self, pool):
        shard = pool.get("alpha")
        assert pool.evict("alpha") is True
        assert shard.closed
        assert "alpha" not in pool
        assert pool.evict("alpha") is False

    def test_close_closes_every_shard(self, tmp_path):
        pool = DatabasePool(tmp_path / "p", capacity=4)
        shards = [pool.get(name) for name in ("a", "b", "c")]
        pool.close()
        assert all(shard.closed for shard in shards)
        assert len(pool) == 0

    def test_failed_eviction_flush_reinstates_the_shard(self, pool, monkeypatch):
        """A flush failure during eviction must not drop acknowledged records."""
        alpha = pool.get("alpha")
        alpha.queue.append(logs=[_log(alpha, 0)])
        attempts = []
        original_flush = alpha.queue.flush

        def failing_flush():
            if not attempts:
                attempts.append(1)
                raise RuntimeError("disk hiccup")
            return original_flush()

        monkeypatch.setattr(alpha.queue, "flush", failing_flush)
        pool.get("beta")
        pool.get("gamma")  # eviction of alpha: close fails, shard reinstated
        assert not alpha.closed
        assert "alpha" in pool
        assert alpha.queue.pending == 1  # records still reachable
        pool.close()  # second attempt succeeds
        assert alpha.closed
        assert alpha.queue.pending == 0

    def test_factory_failure_does_not_wedge_the_pool(self, tmp_path):
        calls = []

        def flaky_factory(name):
            calls.append(name)
            if len(calls) == 1:
                raise RuntimeError("cold start failed")
            return DatabasePool(tmp_path / "p")._default_factory(name)

        pool = DatabasePool(tmp_path / "p", capacity=2, shard_factory=flaky_factory)
        try:
            with pytest.raises(RuntimeError):
                pool.get("alpha")
            # The failed open left no reservation behind; a retry succeeds.
            shard = pool.get("alpha")
            assert not shard.closed
        finally:
            pool.close()

    def test_concurrent_first_opens_share_one_handle(self, tmp_path):
        pool = DatabasePool(tmp_path / "p", capacity=4)
        try:
            results = []

            def opener():
                results.append(pool.get("shared"))

            threads = [threading.Thread(target=opener) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len({id(shard) for shard in results}) == 1
            assert pool.stats.misses == 1  # only one thread actually opened
        finally:
            pool.close()


class TestCheckout:
    def test_checkout_holds_the_shard_lock(self, pool):
        with pool.checkout("alpha") as shard:
            # The shard lock is re-entrant, so the owning thread re-acquires...
            assert shard.lock.acquire(blocking=False)
            shard.lock.release()
            # ...while another thread cannot.
            acquired = []
            thread = threading.Thread(
                target=lambda: acquired.append(shard.lock.acquire(blocking=False))
            )
            thread.start()
            thread.join()
            assert acquired == [False]

    def test_checkout_retries_after_eviction_race(self, pool):
        stale = pool.get("alpha")
        pool.evict("alpha")  # simulate losing the race: handle closed underneath us
        assert stale.closed
        with pool.checkout("alpha") as shard:
            assert not shard.closed
            assert shard is not stale

    def test_concurrent_appends_land_in_full(self, tmp_path):
        pool = DatabasePool(tmp_path / "p", capacity=4)
        try:
            def worker(worker_id: int) -> None:
                for i in range(20):
                    with pool.checkout("shared") as shard:
                        shard.queue.append(logs=[_log(shard, worker_id * 100 + i)])

            threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with pool.checkout("shared") as shard:
                shard.flush()
                assert shard.session.db.count("logs") == 80
        finally:
            pool.close()

    def test_flush_all_reports_written_records(self, pool):
        alpha = pool.get("alpha")
        beta = pool.get("beta")
        alpha.queue.append(logs=[_log(alpha, 0)])
        beta.queue.append(logs=[_log(beta, 0), _log(beta, 1)])
        assert pool.flush_all() == 3


class TestDurabilityCounters:
    """The drop-total and closing-registry machinery behind the seal protocol."""

    def test_dropped_rows_total_is_monotone_across_reopens(self, tmp_path):
        pool = DatabasePool(tmp_path / "p", capacity=2, flush_mode="async")
        try:
            first = pool.get("alpha")
            assert pool.dropped_rows_total("alpha") == 0
            first.session.flusher.stats.dropped_rows = 3
            assert pool.dropped_rows_total("alpha") == 3
            assert pool.evict("alpha")  # banks the incarnation's count
            assert pool.dropped_rows_total("alpha") == 3
            second = pool.get("alpha")
            assert second.incarnation > first.incarnation
            assert second.session.flusher.stats.dropped_rows == 0
            assert pool.dropped_rows_total("alpha") == 3  # bank + fresh live
            second.session.flusher.stats.dropped_rows = 2
            assert pool.dropped_rows_total("alpha") == 5
        finally:
            pool.close()

    def test_lru_eviction_banks_drops_too(self, tmp_path):
        pool = DatabasePool(tmp_path / "p", capacity=1, flush_mode="async")
        try:
            pool.get("alpha").session.flusher.stats.dropped_rows = 4
            pool.get("beta")  # capacity 1: alpha evicted via the LRU path
            assert "alpha" not in pool
            assert pool.dropped_rows_total("alpha") == 4
        finally:
            pool.close()

    def test_lookup_waits_out_an_inflight_close_so_reinstating_wins(
        self, pool, monkeypatch
    ):
        """A lookup racing a failing close must get the reinstated shard
        back — not rebuild the name and orphan the old handle's records."""
        alpha = pool.get("alpha")
        entered = threading.Event()
        gate = threading.Event()

        def slow_failing_close():
            entered.set()
            gate.wait(5.0)
            raise RuntimeError("flush died mid-close")

        monkeypatch.setattr(alpha, "close", slow_failing_close)
        evict_failed = []

        def evict():
            try:
                pool.evict("alpha")
            except RuntimeError:
                evict_failed.append(True)

        closer = threading.Thread(target=evict)
        closer.start()
        assert entered.wait(5.0)
        got = []
        looker = threading.Thread(target=lambda: got.append(pool.get("alpha")))
        looker.start()
        looker.join(timeout=0.2)
        assert not got  # parked on the closing reservation, not rebuilding
        gate.set()
        closer.join(timeout=5.0)
        looker.join(timeout=5.0)
        assert evict_failed  # the explicit evict propagated its failure
        assert got == [alpha]  # same handle, reinstated
        assert not alpha.closed
