"""Endpoint round-trip tests for the multi-tenant service app."""

from __future__ import annotations

import threading

import pytest

from repro.service import FlorService
from repro.webapp.framework import TestClient


@pytest.fixture()
def service(tmp_path):
    service = FlorService(tmp_path / "host", pool_capacity=4, flush_size=4, flush_interval=None)
    yield service
    service.close()


@pytest.fixture()
def client(service):
    return TestClient(service.app())


def _append(client, project: str, values, **extra):
    payload = {
        "records": [{"name": "loss", "value": v, "ctx_id": i} for i, v in enumerate(values)]
    }
    payload.update(extra)
    return client.post(f"/projects/{project}/logs", json_body=payload)


class TestAppend:
    def test_bulk_append_is_acknowledged_with_202(self, client):
        response = _append(client, "alpha", [0.5, 0.4])
        assert response.status == 202
        body = response.json()
        assert body["queued"] == 2
        assert body["flushed"] is False
        assert body["pending"] == 2

    def test_batch_flush_on_size_through_the_endpoint(self, client, service):
        _append(client, "alpha", [0.5, 0.4])
        response = _append(client, "alpha", [0.3, 0.2])  # reaches flush_size=4
        assert response.json()["flushed"] is True
        assert response.json()["pending"] == 0
        with service.pool.checkout("alpha") as shard:
            # The size trigger handed the batch to the (async) flusher; the
            # shard flush is the durability barrier readers go through.
            shard.flush()
            assert shard.session.db.count("logs") == 4

    def test_append_accepts_loop_records(self, client, service):
        response = client.post(
            "/projects/alpha/logs",
            json_body={
                "filename": "train.py",
                "loops": [
                    {"loop_name": "epoch", "loop_iteration": 0, "ctx_id": 1, "iteration_value": "0"}
                ],
            },
        )
        assert response.status == 202
        with service.pool.checkout("alpha") as shard:
            shard.flush()
            assert shard.session.db.count("loops") == 1

    def test_empty_payload_is_rejected(self, client):
        response = client.post("/projects/alpha/logs", json_body={})
        assert response.status == 400

    def test_record_without_name_is_rejected(self, client):
        response = client.post(
            "/projects/alpha/logs", json_body={"records": [{"value": 1.0}]}
        )
        assert response.status == 400
        assert "name" in response.json()["error"]

    def test_malformed_json_body_is_rejected(self, client):
        response = client.post("/projects/alpha/logs", body=b"{not json")
        assert response.status == 400

    def test_non_object_body_is_rejected(self, client):
        response = client.post("/projects/alpha/logs", json_body=[1, 2, 3])
        assert response.status == 400

    @pytest.mark.parametrize(
        "payload",
        [
            {"records": [{"name": "x", "ctx_id": "abc"}]},
            {"loops": [{"loop_name": "epoch", "loop_iteration": "two"}]},
            {"loops": [{"loop_name": "epoch", "parent_ctx_id": "root"}]},
        ],
    )
    def test_non_integer_fields_are_a_400_not_a_500(self, client, payload):
        response = client.post("/projects/alpha/logs", json_body=payload)
        assert response.status == 400
        assert "integer" in response.json()["error"]


class TestReads:
    def test_dataframe_reads_its_own_queued_writes(self, client):
        _append(client, "alpha", [0.5])  # stays pending (flush_size=4)
        response = client.get("/projects/alpha/dataframe?names=loss")
        assert response.status == 200
        body = response.json()
        assert body["rows"] == 1
        assert "loss" in body["columns"]
        assert body["records"][0]["loss"] == 0.5

    def test_dataframe_requires_names(self, client):
        assert client.get("/projects/alpha/dataframe").status == 400

    def test_sql_select_over_http(self, client):
        _append(client, "alpha", [0.5, 0.4, 0.3])
        response = client.get("/projects/alpha/sql?q=SELECT COUNT(*) AS n FROM logs")
        assert response.status == 200
        assert response.json()["records"] == [{"n": 3}]

    def test_sql_pivot_over_names(self, client):
        # Two runs (distinct tstamps) pivot into two rows; run-level logs in
        # the same run collapse into one.
        client.post(
            "/projects/alpha/logs",
            json_body={
                "records": [
                    {"name": "loss", "value": 0.5, "tstamp": "2025-01-01T00:00:00"},
                    {"name": "loss", "value": 0.4, "tstamp": "2025-01-02T00:00:00"},
                ]
            },
        )
        response = client.get(
            "/projects/alpha/sql?q=SELECT MAX(loss) AS worst FROM pivot&names=loss"
        )
        assert response.status == 200
        assert response.json()["records"][0]["worst"] == 0.5

    @pytest.mark.parametrize(
        "statement",
        [
            "DELETE FROM logs",
            "INSERT INTO logs VALUES (1)",
            "UPDATE logs SET value = 0",
            "DROP TABLE logs",
            "PRAGMA journal_mode=DELETE",
            # Smuggled past a prefix check; the authorizer must catch it.
            "WITH t AS (SELECT 1) DELETE FROM logs",
        ],
    )
    def test_writes_over_http_are_rejected(self, client, statement):
        _append(client, "alpha", [0.5])
        response = client.get(f"/projects/alpha/sql?q={statement}")
        assert response.status == 400
        assert "SELECT/WITH" in response.json()["error"]
        # The data survived the attempt.
        count = client.get("/projects/alpha/sql?q=SELECT COUNT(*) AS n FROM logs").json()
        assert count["records"] == [{"n": 1}]

    def test_malformed_sql_is_a_400_not_a_500(self, client):
        _append(client, "alpha", [0.5])
        response = client.get("/projects/alpha/sql?q=SELECT * FROM no_such_table")
        assert response.status == 400
        assert "SQL error" in response.json()["error"]

    def test_sql_requires_a_query(self, client):
        _append(client, "alpha", [0.5])
        assert client.get("/projects/alpha/sql").status == 400

    def test_reads_of_unknown_projects_are_404_and_create_nothing(self, client, service):
        for url in (
            "/projects/ghost/sql?q=SELECT 1",
            "/projects/ghost/dataframe?names=loss",
            "/projects/ghost/stats",
        ):
            assert client.get(url).status == 404
        assert not (service.root / "ghost").exists()
        assert "ghost" not in service.pool

    def test_reads_work_once_the_project_exists(self, client):
        _append(client, "alpha", [0.5])
        assert client.get("/projects/alpha/stats").status == 200


class TestCommit:
    def test_commit_flushes_the_queue_and_returns_a_vid(self, client, service):
        _append(client, "alpha", [0.5])  # pending, below flush_size
        response = client.post("/projects/alpha/commit", json_body={"message": "run 1"})
        assert response.status == 200
        assert response.json()["vid"]
        with service.pool.checkout("alpha") as shard:
            assert shard.queue.pending == 0
            assert shard.session.db.count("logs") == 1
            assert shard.session.db.count("ts2vid") == 1

    def test_commit_starts_a_new_epoch(self, client, service):
        _append(client, "alpha", [0.5])
        first = client.post("/projects/alpha/commit", json_body={}).json()
        _append(client, "alpha", [0.4])
        second = client.post("/projects/alpha/commit", json_body={}).json()
        # Unchanged manifests reuse the head vid (several epochs can map to
        # one version id), but each commit opens a fresh timestamp epoch.
        assert first["tstamp"] != second["tstamp"]
        with service.pool.checkout("alpha") as shard:
            assert shard.session.db.count("ts2vid") == 2


class TestTenancy:
    def test_projects_are_physically_isolated(self, client, service):
        _append(client, "alpha", [0.5])
        _append(client, "beta", [0.9, 0.8])
        alpha = client.get("/projects/alpha/sql?q=SELECT COUNT(*) AS n FROM logs").json()
        beta = client.get("/projects/beta/sql?q=SELECT COUNT(*) AS n FROM logs").json()
        assert alpha["records"] == [{"n": 1}]
        assert beta["records"] == [{"n": 2}]

    @pytest.mark.parametrize("name", ["..", ".hidden", "a b", "-dash", "sp%40m"])
    def test_invalid_project_names_are_rejected(self, client, name):
        response = client.post(f"/projects/{name}/logs", json_body={"records": [{"name": "x"}]})
        assert response.status == 400

    def test_unknown_route_is_404(self, client):
        assert client.get("/projects/alpha/nope").status == 404

    def test_lru_eviction_is_transparent_to_clients(self, tmp_path):
        service = FlorService(tmp_path / "small", pool_capacity=1, flush_size=2, flush_interval=None)
        try:
            client = TestClient(service.app())
            _append(client, "alpha", [0.5])  # pending when beta evicts alpha
            _append(client, "beta", [0.9])
            count = client.get("/projects/alpha/sql?q=SELECT COUNT(*) AS n FROM logs").json()
            assert count["records"] == [{"n": 1}]
            assert service.pool.stats.evictions >= 1
            assert service.pool.stats.reopens >= 1
        finally:
            service.close()


class TestIntrospection:
    def test_healthz(self, client):
        response = client.get("/healthz")
        assert response.ok and response.json()["status"] == "ok"

    def test_service_stats_reports_pool_state(self, client):
        _append(client, "alpha", [0.5])
        body = client.get("/service/stats").json()
        assert body["open_shards"] == ["alpha"]
        assert body["capacity"] == 4
        assert body["pool"]["misses"] == 1

    def test_project_stats_reports_counts_and_queue(self, client):
        _append(client, "alpha", [0.5])
        body = client.get("/projects/alpha/stats").json()
        assert body["project"] == "alpha"
        assert body["pending"] == 1
        assert body["tables"]["logs"] == 0  # still queued
        assert body["ingest"]["appended"] == 1

    def test_project_stats_exposes_the_durability_fields(self, client, service):
        """The seal-protocol surface: a monotone drop total plus the live
        shard's incarnation and flusher counters (see docs/testing.md)."""
        _append(client, "alpha", [0.5])
        body = client.get("/projects/alpha/stats").json()
        assert body["dropped_rows_total"] == 0
        assert body["incarnation"] >= 1
        assert body["flusher"]["dropped_rows"] == 0
        # The total must survive an eviction cycle, not reset with the
        # shard's own counters: simulate a shed batch, evict, reopen.
        service.pool.get("alpha").session.flusher.stats.dropped_rows = 2
        assert service.pool.evict("alpha")
        _append(client, "alpha", [0.6])
        after = client.get("/projects/alpha/stats").json()
        assert after["dropped_rows_total"] == 2
        assert after["flusher"]["dropped_rows"] == 0  # fresh incarnation
        assert after["incarnation"] > body["incarnation"]


class TestConcurrency:
    def test_eight_threads_append_without_loss(self, tmp_path):
        service = FlorService(tmp_path / "conc", pool_capacity=4, flush_size=16, flush_interval=None)
        try:
            client = TestClient(service.app())
            errors = []

            def worker(worker_id: int) -> None:
                project = f"tenant_{worker_id % 2}"
                for i in range(25):
                    response = _append(client, project, [worker_id + i * 0.01])
                    if not response.ok:
                        errors.append(response.status)

            threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            total = 0
            for project in ("tenant_0", "tenant_1"):
                body = client.get(
                    f"/projects/{project}/sql?q=SELECT COUNT(*) AS n FROM logs"
                ).json()
                total += body["records"][0]["n"]
            assert total == 8 * 25
        finally:
            service.close()
