"""Tests for the socket-facing HTTP bridge behind ``repro serve``."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import FlorService
from repro.service.server import make_server, serve


@pytest.fixture()
def running_service(tmp_path):
    """A FlorService behind a real socket on an ephemeral port."""
    service = FlorService(tmp_path / "host", flush_size=2, flush_interval=None)
    address = {}
    ready = threading.Event()
    stop = threading.Event()

    def on_ready(host: str, port: int) -> None:
        address.update(host=host, port=port)
        ready.set()

    thread = threading.Thread(
        target=serve,
        args=(service.app(),),
        kwargs=dict(port=0, quiet=True, ready=on_ready, shutdown_event=stop),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=5), "server did not come up"
    yield f"http://{address['host']}:{address['port']}", service
    stop.set()
    thread.join(timeout=5)
    assert not thread.is_alive()
    service.close()


def _post(url: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.load(response)


def _get(url: str) -> tuple[int, dict]:
    with urllib.request.urlopen(url) as response:
        return response.status, json.load(response)


class TestBridge:
    def test_append_and_query_over_a_real_socket(self, running_service):
        base, _ = running_service
        status, body = _post(
            base + "/projects/alpha/logs",
            {"records": [{"name": "loss", "value": 0.5}, {"name": "loss", "value": 0.4, "ctx_id": 1}]},
        )
        assert status == 202
        assert body["queued"] == 2
        status, body = _get(base + "/projects/alpha/sql?q=SELECT%20COUNT(*)%20AS%20n%20FROM%20logs")
        assert status == 200
        assert body["records"] == [{"n": 2}]

    def test_write_sql_is_rejected_with_400(self, running_service):
        base, _ = running_service
        _post(base + "/projects/alpha/logs", {"records": [{"name": "loss", "value": 1.0}]})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/projects/alpha/sql?q=DROP%20TABLE%20logs")
        assert excinfo.value.code == 400

    def test_unknown_route_is_404(self, running_service):
        base, _ = running_service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/nope")
        assert excinfo.value.code == 404

    def test_healthz(self, running_service):
        base, _ = running_service
        status, body = _get(base + "/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_concurrent_http_clients(self, running_service):
        base, service = running_service
        errors = []

        def worker(worker_id: int) -> None:
            for i in range(10):
                try:
                    _post(
                        base + "/projects/shared/logs",
                        {"records": [{"name": "m", "value": worker_id, "ctx_id": i}]},
                    )
                except Exception as exc:  # noqa: BLE001 - collected for the assertion
                    errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        _, body = _get(base + "/projects/shared/sql?q=SELECT%20COUNT(*)%20AS%20n%20FROM%20logs")
        assert body["records"] == [{"n": 40}]


class TestMakeServer:
    def test_port_zero_binds_an_ephemeral_port(self, tmp_path):
        service = FlorService(tmp_path / "h2")
        server = make_server(service.app(), port=0)
        try:
            assert server.server_address[1] > 0
        finally:
            server.server_close()
            service.close()
