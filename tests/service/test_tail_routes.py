"""Tail/telemetry route tests: cursors, reconnects, eviction, backpressure.

Everything runs in-process through :class:`TestClient` — the SSE generator
is pulled lazily, so a test can take a few events, ingest more rows, and
keep pulling: the generator's next fetch sees the newly committed rows,
which is exactly the live-tail behaviour over a socket (minus the socket).
``keepalive`` is set low everywhere so idle waits resolve in milliseconds.
"""

from __future__ import annotations

import pytest

from repro.service import FlorService
from repro.webapp.framework import TestClient


@pytest.fixture()
def service(tmp_path):
    service = FlorService(tmp_path / "host", pool_capacity=4, flush_size=2, flush_interval=None)
    yield service
    service.close()


@pytest.fixture()
def client(service):
    return TestClient(service.app())


def _ingest(client, project: str, values, filename: str = "train.py"):
    response = client.post(
        f"/projects/{project}/logs",
        json_body={
            "filename": filename,
            "records": [
                {"name": "loss", "value": value, "ctx_id": i} for i, value in enumerate(values)
            ],
        },
    )
    assert response.status == 202
    return response


def _flush(service, project: str) -> None:
    with service.pool.checkout(project) as shard:
        shard.flush()


def _tail(client, project: str, *, headers=None, query: str = ""):
    url = f"/projects/{project}/tail?keepalive=0.05" + (f"&{query}" if query else "")
    return client.sse(url, headers=headers)


class TestProjectTailBackfill:
    def test_backlog_streams_with_seq_as_event_id(self, client, service):
        _ingest(client, "alpha", [0.5, 0.4, 0.3])
        _flush(service, "alpha")
        events = _tail(client, "alpha").collect(max_events=3, timeout=10)
        assert [e.id for e in events] == ["1", "2", "3"]
        assert all(e.event == "log" for e in events)
        payload = events[0].json()
        assert payload["name"] == "loss"
        assert payload["value"] == "0.5"
        assert payload["filename"] == "train.py"

    def test_last_event_id_resumes_without_duplicates(self, client, service):
        _ingest(client, "alpha", [0.5, 0.4, 0.3, 0.2])
        _flush(service, "alpha")
        stream = _tail(client, "alpha", headers={"Last-Event-ID": "2"})
        events = stream.collect(max_events=2, timeout=10)
        assert [e.id for e in events] == ["3", "4"]

    def test_since_seq_query_is_the_header_fallback(self, client, service):
        _ingest(client, "alpha", [0.5, 0.4, 0.3])
        _flush(service, "alpha")
        events = _tail(client, "alpha", query="since_seq=2").collect(max_events=1, timeout=10)
        assert [e.id for e in events] == ["3"]

    def test_header_wins_over_since_seq(self, client, service):
        _ingest(client, "alpha", [0.5, 0.4, 0.3])
        _flush(service, "alpha")
        stream = _tail(
            client, "alpha", headers={"Last-Event-ID": "2"}, query="since_seq=0"
        )
        assert [e.id for e in stream.collect(max_events=1, timeout=10)] == ["3"]

    def test_garbage_cursor_is_a_400(self, client, service):
        _ingest(client, "alpha", [0.5])
        _flush(service, "alpha")
        assert _tail(client, "alpha", query="since_seq=banana").status == 400

    def test_unknown_project_is_a_404(self, client):
        assert _tail(client, "ghost").status == 404


class TestProjectTailLive:
    def test_rows_ingested_mid_stream_arrive_on_the_open_tail(self, client, service):
        _ingest(client, "alpha", [0.5, 0.4])
        _flush(service, "alpha")
        stream = _tail(client, "alpha")
        events = iter(stream.events(max_events=4, timeout=10))
        assert next(events).id == "1"
        assert next(events).id == "2"
        _ingest(client, "alpha", [0.3, 0.2])  # flush_size=2 commits inline
        _flush(service, "alpha")
        assert [e.id for e in events] == ["3", "4"]

    def test_stale_cursor_beyond_the_watermark_is_clamped(self, client, service):
        """A Last-Event-ID from before a project reset must not make the
        subscriber wait forever for sequence numbers that never come."""
        _ingest(client, "alpha", [0.5, 0.4])
        _flush(service, "alpha")
        stream = _tail(client, "alpha", headers={"Last-Event-ID": "999999"})
        _ingest(client, "alpha", [0.3, 0.2])
        _flush(service, "alpha")
        events = stream.collect(max_events=2, timeout=10)
        assert [e.id for e in events] == ["3", "4"]

    def test_tail_survives_shard_eviction_and_reopen(self, client, service):
        """The broker stream is keyed by project *name*; the generator's
        per-fetch checkout transparently reopens an evicted shard (fresh
        incarnation, same SQLite file), so the cursor just keeps going."""
        _ingest(client, "alpha", [0.5, 0.4])
        _flush(service, "alpha")
        first_incarnation = client.get("/projects/alpha/stats").json()["incarnation"]
        stream = _tail(client, "alpha")
        events = iter(stream.events(max_events=4, timeout=10))
        assert [next(events).id, next(events).id] == ["1", "2"]
        # Evict alpha by filling the pool (capacity 4) with other tenants.
        for other in ("b1", "b2", "b3", "b4"):
            _ingest(client, other, [1.0, 1.0])
            _flush(service, other)
        _ingest(client, "alpha", [0.3, 0.2])
        _flush(service, "alpha")
        assert [e.id for e in events] == ["3", "4"]
        assert client.get("/projects/alpha/stats").json()["incarnation"] > first_incarnation

    def test_tail_survives_a_fleet_drain_seal(self, client, service):
        """POST /fleet/drain seals every shard; the open tail reopens it
        on the next fetch and resumes from its cursor."""
        _ingest(client, "alpha", [0.5, 0.4])
        _flush(service, "alpha")
        stream = _tail(client, "alpha")
        events = iter(stream.events(max_events=4, timeout=10))
        assert [next(events).id, next(events).id] == ["1", "2"]
        assert client.post("/fleet/drain").status == 200
        _ingest(client, "alpha", [0.3, 0.2])
        _flush(service, "alpha")
        assert [e.id for e in events] == ["3", "4"]


class TestEvictionAndBackpressure:
    def test_slow_consumer_is_evicted_and_told_why(self, tmp_path):
        service = FlorService(
            tmp_path / "host", flush_size=2, flush_interval=None, tail_max_lag=3
        )
        try:
            client = TestClient(service.app())
            _ingest(client, "alpha", [0.1, 0.2])
            _flush(service, "alpha")
            stream = _tail(client, "alpha")  # subscribed, but not consuming
            # Publish far past max_lag while the consumer sits idle.
            for _ in range(4):
                _ingest(client, "alpha", [1.0, 2.0])
            _flush(service, "alpha")
            events = stream.collect(max_events=1, timeout=10)
            assert events[0].event == "evicted"
            assert "lagging" in events[0].json()["reason"]
            assert service.tail.stats()["evicted_total"] == 1
        finally:
            service.close()

    def test_subscriber_cap_answers_503_with_retry_after(self, tmp_path):
        service = FlorService(
            tmp_path / "host", flush_size=2, flush_interval=None, tail_max_subscribers=1
        )
        try:
            client = TestClient(service.app())
            _ingest(client, "alpha", [0.1, 0.2])
            _flush(service, "alpha")
            held = _tail(client, "alpha")  # occupies the only slot
            refused = _tail(client, "alpha")
            assert refused.status == 503
            assert refused.headers.get("Retry-After") == "1.0"
            held.close()
            # The slot is free again once the first stream closes.
            assert _tail(client, "alpha").status == 200
        finally:
            service.close()

    def test_service_close_ends_open_tails(self, tmp_path):
        service = FlorService(tmp_path / "host", flush_size=2, flush_interval=None)
        client = TestClient(service.app())
        _ingest(client, "alpha", [0.1, 0.2])
        _flush(service, "alpha")
        stream = _tail(client, "alpha")
        events = iter(stream.events(max_events=3, timeout=10))
        assert next(events).id == "1"
        service.close()
        remaining = list(events)
        assert remaining[-1].event == "evicted"
        assert "shutting down" in remaining[-1].json()["reason"]


class TestJobTail:
    def test_job_events_stream_and_end_with_done(self, client, service):
        _ingest(client, "alpha", [0.5, 0.4])
        _flush(service, "alpha")
        job = client.post(
            "/projects/alpha/jobs/backfill", json_body={"filename": "train.py"}
        ).json()["job"]
        client.post(f"/jobs/{job['id']}/cancel")
        stream = client.sse(f"/jobs/{job['id']}/tail?keepalive=0.05")
        events = stream.collect(timeout=10)
        kinds = [e.event for e in events]
        assert kinds[0] == "submitted"
        assert "cancelled" in kinds
        assert kinds[-1] == "done"
        assert events[-1].json()["state"] == "cancelled"

    def test_job_tail_resumes_from_last_event_id(self, client, service):
        _ingest(client, "alpha", [0.5, 0.4])
        _flush(service, "alpha")
        job = client.post(
            "/projects/alpha/jobs/backfill", json_body={"filename": "train.py"}
        ).json()["job"]
        client.post(f"/jobs/{job['id']}/cancel")
        first = client.sse(f"/jobs/{job['id']}/tail?keepalive=0.05").collect(timeout=10)
        resume_from = first[0].id
        second = client.sse(
            f"/jobs/{job['id']}/tail?keepalive=0.05",
            headers={"Last-Event-ID": str(resume_from)},
        ).collect(timeout=10)
        # Everything after the resume cursor replays, nothing before it.
        assert [e.id for e in second if e.id] == [e.id for e in first[1:] if e.id]

    def test_unknown_job_tail_is_a_404(self, client):
        assert client.sse("/jobs/9999/tail").status == 404


class TestTelemetryRoute:
    def test_snapshot_carries_registry_tail_and_jobs(self, client, service):
        _ingest(client, "alpha", [0.5, 0.4])
        _flush(service, "alpha")
        body = client.get("/service/telemetry").json()
        assert body["counters"]["flush.rows"] >= 2
        assert body["open_shards"] == 1
        assert body["tail"]["subscribers"] == 0
        assert "queued" in body["jobs"]
        assert "flush.ms" in body["histograms"]

    def test_stream_mode_emits_periodic_snapshots(self, client, service):
        _ingest(client, "alpha", [0.5, 0.4])
        _flush(service, "alpha")
        stream = client.sse("/service/telemetry?stream=1&interval=0.05")
        events = stream.collect(max_events=2, timeout=10)
        assert [e.event for e in events] == ["telemetry", "telemetry"]
        assert [e.id for e in events] == ["1", "2"]
        assert events[0].json()["counters"]["flush.rows"] >= 2

    def test_tail_subscriptions_show_up_in_telemetry(self, client, service):
        _ingest(client, "alpha", [0.5, 0.4])
        _flush(service, "alpha")
        stream = _tail(client, "alpha")
        stream.collect(max_events=1, timeout=10)  # generator now running
        # collect() closed the stream; subscribed_total remembers it.
        body = client.get("/service/telemetry").json()
        assert body["tail"]["subscribed_total"] >= 1

    def test_bad_interval_is_a_400(self, client):
        assert client.get("/service/telemetry?stream=1&interval=abc").status == 400
