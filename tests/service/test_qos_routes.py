"""HTTP-level QoS behaviour: enforcement on tenant routes, policy admin API.

Covers the ISSUE acceptance criteria at the protocol level: over-limit
requests get ``429`` with a computed ``Retry-After`` (never queued),
conflicting policy writes get ``409`` with the structured conflict detail,
and admission counters surface in both stats routes.
"""

from __future__ import annotations

import json

import pytest

from repro.service import FlorService
from repro.webapp.framework import TestClient
from repro.workloads import BackfillJobWorkload


@pytest.fixture()
def service(tmp_path):
    service = FlorService(tmp_path / "host", flush_interval=None, qos=True)
    yield service
    service.close()


@pytest.fixture()
def client(service):
    return TestClient(service.app())


def _append(client, project: str, values):
    payload = {
        "records": [{"name": "loss", "value": v, "ctx_id": i} for i, v in enumerate(values)]
    }
    return client.post(f"/projects/{project}/logs", json_body=payload)


class TestEnforcement:
    def test_rate_limited_tenant_gets_429_with_retry_after(self, client):
        response = client.put("/service/policy/hot", json_body={"rate": 2.0, "burst": 2.0})
        assert response.status == 200
        assert _append(client, "hot", [0.1]).status == 202
        assert _append(client, "hot", [0.2]).status == 202
        throttled = _append(client, "hot", [0.3])
        assert throttled.status == 429
        retry_after = float(throttled.headers["Retry-After"])
        assert retry_after > 0.0
        body = throttled.json()
        assert body["detail"]["reason"] == "rate"
        assert body["detail"]["tenant"] == "hot"

    def test_oversized_append_is_413_not_queued(self, client):
        client.put("/service/policy/hot", json_body={"byte_quota": 64, "window_seconds": 30.0})
        response = _append(client, "hot", [0.1, 0.2, 0.3, 0.4, 0.5])
        assert response.status == 413
        assert response.json()["detail"]["reason"] == "too_large"
        assert "Retry-After" in response.headers

    def test_other_tenants_unaffected_by_hot_throttle(self, client):
        client.put("/service/policy/hot", json_body={"rate": 1.0, "burst": 1.0})
        assert _append(client, "hot", [0.1]).status == 202
        assert _append(client, "hot", [0.2]).status == 429
        for i in range(5):
            assert _append(client, "cold", [float(i)]).status == 202

    def test_reads_are_enforced_too(self, client, service):
        assert _append(client, "hot", [0.1]).status == 202
        client.put("/service/policy/hot", json_body={"rate": 1.0, "burst": 1.0})
        assert client.get("/projects/hot/dataframe?names=loss").status == 200
        denied = client.get("/projects/hot/dataframe?names=loss")
        assert denied.status == 429

    def test_stats_remain_reachable_while_throttled(self, client):
        client.put("/service/policy/hot", json_body={"rate": 1.0, "burst": 1.0})
        assert _append(client, "hot", [0.1]).status == 202
        assert _append(client, "hot", [0.2]).status == 429
        stats = client.get("/projects/hot/stats")
        assert stats.status == 200
        qos = stats.json()["qos"]
        assert qos["admitted"] == 1
        assert qos["throttled"] == 1
        assert qos["policy"]["source"] == "rule"

    def test_service_stats_carries_global_qos_block(self, client):
        client.put("/service/policy/hot", json_body={"rate": 1.0, "burst": 1.0})
        _append(client, "hot", [0.1])
        _append(client, "hot", [0.2])
        _append(client, "cold", [0.3])
        qos = client.get("/service/stats").json()["qos"]
        assert qos["admitted"] == 2
        assert qos["throttled"] == 1
        assert set(qos["tenants"]) == {"hot", "cold"}

    def test_disabled_service_never_throttles_and_reports_no_qos(self, tmp_path):
        service = FlorService(tmp_path / "plain", flush_interval=None)
        try:
            client = TestClient(service.app())
            # The policy table is writable even with enforcement off …
            client.put("/service/policy/hot", json_body={"rate": 1.0, "burst": 1.0})
            # … but nothing is enforced and stats carry no counters.
            for i in range(10):
                assert _append(client, "hot", [float(i)]).status == 202
            assert client.get("/service/policy").json()["enforcing"] is False
            assert "qos" not in client.get("/service/stats").json()
            assert client.get("/projects/hot/stats").json()["qos"] is None
        finally:
            service.close()


class TestPolicyRoutes:
    def test_table_roundtrip(self, client):
        client.put("/service/policy/hot", json_body={"rate": 2.0, "priority": "low"})
        client.put("/service/policy/*", json_body={"rate": 50.0})
        table = client.get("/service/policy").json()
        assert table["enforcing"] is True
        assert table["generation"] == 2
        assert [r["selector"] for r in table["rules"]] == ["hot"]
        assert table["default"]["rate"] == 50.0

    def test_get_concrete_tenant_includes_resolution(self, client):
        client.put("/service/policy/team_*", json_body={"rate": 5.0})
        payload = client.get("/service/policy/team_a").json()
        assert payload["rule"] is None  # no exact rule for team_a
        assert payload["resolved"]["selector"] == "team_*"
        assert payload["resolved"]["source"] == "rule"

    def test_get_missing_pattern_rule_is_404(self, client):
        assert client.get("/service/policy/team_*").status == 404

    def test_conflicting_write_is_409_with_structured_detail(self, client):
        assert client.put("/service/policy/team_*", json_body={"rate": 5.0}).status == 200
        conflict = client.put("/service/policy/team_a", json_body={"rate": 50.0})
        assert conflict.status == 409
        detail = conflict.json()["detail"]
        assert detail["code"] == "shadowed"
        assert detail["selector"] == "team_a"
        assert detail["by"] == "team_*"
        # The rejected rule was not stored.
        assert client.get("/service/policy/team_a").json()["rule"] is None

    def test_contradictory_write_is_409_naming_the_field(self, client):
        response = client.put("/service/policy/hot", json_body={"rate": 0.0})
        assert response.status == 409
        assert response.json()["detail"] == {
            "code": "contradiction",
            "selector": "hot",
            "field": "rate",
        }

    def test_malformed_payload_is_400(self, client):
        assert client.put("/service/policy/hot", json_body={"speed": 9}).status == 400
        assert client.put("/service/policy/bad name", json_body={"rate": 1.0}).status == 400

    def test_delete_then_404(self, client):
        client.put("/service/policy/hot", json_body={"rate": 1.0})
        assert client.delete("/service/policy/hot").status == 200
        assert client.delete("/service/policy/hot").status == 404

    def test_policy_change_applies_to_live_admission(self, client):
        client.put("/service/policy/hot", json_body={"rate": 1.0, "burst": 1.0})
        assert _append(client, "hot", [0.1]).status == 202
        assert _append(client, "hot", [0.2]).status == 429
        client.delete("/service/policy/hot")
        assert _append(client, "hot", [0.3]).status == 202


class TestPolicyFileAndJobPriority:
    def test_policy_file_loads_at_boot_and_enables_qos(self, tmp_path):
        policy_file = tmp_path / "policy.json"
        policy_file.write_text(
            json.dumps(
                {
                    "default": {"rate": 100.0},
                    "rules": [{"selector": "hot", "rate": 1.0, "burst": 1.0}],
                }
            )
        )
        service = FlorService(
            tmp_path / "host", flush_interval=None, qos_policy_file=policy_file
        )
        try:
            client = TestClient(service.app())
            assert service.admission is not None  # the file implies --qos
            assert _append(client, "hot", [0.1]).status == 202
            assert _append(client, "hot", [0.2]).status == 429
            assert _append(client, "other", [0.3]).status == 202
        finally:
            service.close()

    def test_backfill_priority_defaults_to_policy_class(self, tmp_path):
        workload = BackfillJobWorkload(projects=1, versions=2, epochs=2, steps=1)
        project = workload.project_names()[0]
        root = tmp_path / "host"
        workload.populate(root)
        service = FlorService(root, flush_interval=None, qos=True)
        try:
            client = TestClient(service.app())
            client.put(f"/service/policy/{project}", json_body={"priority": "high"})
            body = {"filename": workload.filename, "new_source": workload.hindsight_source()}
            job = client.post(f"/projects/{project}/jobs/backfill", json_body=body).json()["job"]
            assert job["priority"] == 100  # class default
            body["priority"] = 7
            explicit = client.post(
                f"/projects/{project}/jobs/backfill", json_body=body
            ).json()["job"]
            assert explicit["priority"] == 7  # explicit wins over the class
        finally:
            service.close()
