"""Tests for the batched ingestion queue."""

from __future__ import annotations

import pytest

from repro.relational.database import Database
from repro.relational.records import LogRecord, LoopRecord
from repro.runtime import BackgroundFlusher
from repro.service.ingest import IngestionQueue


def _log(i: int, tstamp: str = "2025-01-01T00:00:00") -> LogRecord:
    return LogRecord.create(
        projid="svc", tstamp=tstamp, filename="load.py", ctx_id=i, value_name="m", value=i
    )


def _loop(i: int, tstamp: str = "2025-01-01T00:00:00") -> LoopRecord:
    return LoopRecord(
        projid="svc",
        tstamp=tstamp,
        filename="load.py",
        ctx_id=i,
        parent_ctx_id=0,
        loop_name="epoch",
        loop_iteration=i,
        iteration_value=str(i),
    )


@pytest.fixture()
def db():
    with Database(":memory:") as database:
        yield database


class TestSizeTrigger:
    def test_below_threshold_stays_pending(self, db):
        queue = IngestionQueue(db, flush_size=4, flush_interval=None)
        assert queue.append(logs=[_log(0), _log(1)]) is False
        assert queue.pending == 2
        assert db.count("logs") == 0

    def test_reaching_threshold_flushes(self, db):
        queue = IngestionQueue(db, flush_size=4, flush_interval=None)
        queue.append(logs=[_log(0), _log(1)])
        assert queue.append(logs=[_log(2), _log(3)]) is True
        assert queue.pending == 0
        assert db.count("logs") == 4
        assert queue.stats.size_flushes == 1
        assert queue.stats.flushed_records == 4

    def test_flush_size_one_is_the_unbatched_baseline(self, db):
        queue = IngestionQueue(db, flush_size=1, flush_interval=None)
        for i in range(3):
            assert queue.append(logs=[_log(i)]) is True
        assert db.count("logs") == 3
        assert queue.stats.flushes == 3

    def test_logs_and_loops_count_toward_the_same_threshold(self, db):
        queue = IngestionQueue(db, flush_size=2, flush_interval=None)
        assert queue.append(logs=[_log(0)], loops=[_loop(0)]) is True
        assert db.count("logs") == 1
        assert db.count("loops") == 1

    def test_invalid_flush_size_rejected(self, db):
        with pytest.raises(ValueError):
            IngestionQueue(db, flush_size=0)


class TestIntervalTrigger:
    def test_elapsed_interval_flushes_on_append(self, db):
        now = [0.0]
        queue = IngestionQueue(db, flush_size=100, flush_interval=1.0, clock=lambda: now[0])
        assert queue.append(logs=[_log(0)]) is False
        now[0] = 2.0
        assert queue.append(logs=[_log(1)]) is True
        assert db.count("logs") == 2
        assert queue.stats.interval_flushes == 1

    def test_interval_disabled_never_time_flushes(self, db):
        now = [0.0]
        queue = IngestionQueue(db, flush_size=100, flush_interval=None, clock=lambda: now[0])
        queue.append(logs=[_log(0)])
        now[0] = 1e9
        assert queue.append(logs=[_log(1)]) is False
        assert queue.pending == 2


class TestExplicitFlush:
    def test_flush_drains_everything(self, db):
        queue = IngestionQueue(db, flush_size=100, flush_interval=None)
        queue.append(logs=[_log(0), _log(1)], loops=[_loop(0)])
        assert queue.flush() == 3
        assert queue.pending == 0
        assert db.count("logs") == 2
        assert db.count("loops") == 1
        assert queue.stats.explicit_flushes == 1

    def test_flush_on_empty_queue_is_a_noop(self, db):
        queue = IngestionQueue(db, flush_size=100, flush_interval=None)
        assert queue.flush() == 0
        assert queue.stats.flushes == 0

    def test_one_transaction_per_flush(self, db, monkeypatch):
        queue = IngestionQueue(db, flush_size=100, flush_interval=None)
        queue.append(logs=[_log(i) for i in range(10)], loops=[_loop(0)])
        calls = []
        original = db.transaction

        def counting_transaction():
            calls.append(1)
            return original()

        monkeypatch.setattr(db, "transaction", counting_transaction)
        queue.flush()
        assert len(calls) == 1  # logs AND loops inside a single transaction
        assert db.count("logs") == 10
        assert db.count("loops") == 1

    def test_failed_flush_requeues_records(self, db, monkeypatch):
        queue = IngestionQueue(db, flush_size=100, flush_interval=None)
        queue.append(logs=[_log(0), _log(1)])

        def broken_transaction():
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(db, "transaction", broken_transaction)
        with pytest.raises(RuntimeError):
            queue.flush()
        monkeypatch.undo()
        assert queue.pending == 2
        assert queue.flush() == 2
        assert db.count("logs") == 2


class TestCallbackFailure:
    def test_on_flush_error_does_not_requeue_committed_rows(self, db):
        """Regression: requeueing after a post-commit callback failure
        duplicated every row of the batch on the next flush."""
        queue = IngestionQueue(
            db,
            flush_size=100,
            flush_interval=None,
            on_flush=lambda _count: (_ for _ in ()).throw(ValueError("hook broke")),
        )
        queue.append(logs=[_log(0), _log(1)])
        with pytest.raises(Exception, match="hook broke"):
            queue.flush()
        assert queue.pending == 0  # durable rows were NOT requeued
        assert db.count("logs") == 2
        queue.on_flush = None
        queue.append(logs=[_log(2)])
        queue.flush()
        assert db.count("logs") == 3  # no duplicates


    def test_deferred_callback_error_does_not_drop_later_batches(self, db):
        """Regression: with an async shared flusher, a deferred callback
        error raised during a later submit dropped the batch that submit was
        carrying (it had been drained from the queue but never enqueued)."""
        flusher = BackgroundFlusher(db)
        calls = [0]

        def flaky_hook(_count):
            calls[0] += 1
            if calls[0] == 1:
                raise ValueError("hook broke once")

        queue = IngestionQueue(
            db, flush_size=2, flush_interval=None, flusher=flusher, on_flush=flaky_hook
        )
        queue.append(logs=[_log(0), _log(1)])  # batch 1: hook will raise post-commit
        queue.append(logs=[_log(2), _log(3)])  # batch 2: must not be lost
        queue.append(logs=[_log(4)])
        with pytest.raises(Exception, match="hook broke once"):
            queue.flush()  # the drain surfaces the deferred callback error
        flusher.drain()
        assert db.count("logs") == 5  # every appended row is durable
        flusher.close()


class TestSharedAsyncFlusher:
    def test_size_flush_hands_off_and_explicit_flush_drains(self, db):
        flusher = BackgroundFlusher(db)
        queue = IngestionQueue(db, flush_size=2, flush_interval=None, flusher=flusher)
        assert queue.append(logs=[_log(0), _log(1)]) is True  # size flush: submitted
        queue.append(logs=[_log(2)])
        assert queue.flush() == 1  # explicit flush drains earlier batches too
        assert db.count("logs") == 3
        flusher.close()

    def test_on_flush_fires_after_rows_are_visible(self, db):
        flusher = BackgroundFlusher(db)
        observed = []
        queue = IngestionQueue(
            db,
            flush_size=2,
            flush_interval=None,
            flusher=flusher,
            on_flush=lambda count: observed.append((count, db.count("logs"))),
        )
        queue.append(logs=[_log(0), _log(1)])
        flusher.drain()
        # Cache invalidation must run only once the batch is committed.
        assert observed == [(2, 2)]
        flusher.close()
