"""Tests for the batched ingestion queue."""

from __future__ import annotations

import pytest

from repro.relational.database import Database
from repro.relational.records import LogRecord, LoopRecord
from repro.service.ingest import IngestionQueue


def _log(i: int, tstamp: str = "2025-01-01T00:00:00") -> LogRecord:
    return LogRecord.create(
        projid="svc", tstamp=tstamp, filename="load.py", ctx_id=i, value_name="m", value=i
    )


def _loop(i: int, tstamp: str = "2025-01-01T00:00:00") -> LoopRecord:
    return LoopRecord(
        projid="svc",
        tstamp=tstamp,
        filename="load.py",
        ctx_id=i,
        parent_ctx_id=0,
        loop_name="epoch",
        loop_iteration=i,
        iteration_value=str(i),
    )


@pytest.fixture()
def db():
    with Database(":memory:") as database:
        yield database


class TestSizeTrigger:
    def test_below_threshold_stays_pending(self, db):
        queue = IngestionQueue(db, flush_size=4, flush_interval=None)
        assert queue.append(logs=[_log(0), _log(1)]) is False
        assert queue.pending == 2
        assert db.count("logs") == 0

    def test_reaching_threshold_flushes(self, db):
        queue = IngestionQueue(db, flush_size=4, flush_interval=None)
        queue.append(logs=[_log(0), _log(1)])
        assert queue.append(logs=[_log(2), _log(3)]) is True
        assert queue.pending == 0
        assert db.count("logs") == 4
        assert queue.stats.size_flushes == 1
        assert queue.stats.flushed_records == 4

    def test_flush_size_one_is_the_unbatched_baseline(self, db):
        queue = IngestionQueue(db, flush_size=1, flush_interval=None)
        for i in range(3):
            assert queue.append(logs=[_log(i)]) is True
        assert db.count("logs") == 3
        assert queue.stats.flushes == 3

    def test_logs_and_loops_count_toward_the_same_threshold(self, db):
        queue = IngestionQueue(db, flush_size=2, flush_interval=None)
        assert queue.append(logs=[_log(0)], loops=[_loop(0)]) is True
        assert db.count("logs") == 1
        assert db.count("loops") == 1

    def test_invalid_flush_size_rejected(self, db):
        with pytest.raises(ValueError):
            IngestionQueue(db, flush_size=0)


class TestIntervalTrigger:
    def test_elapsed_interval_flushes_on_append(self, db):
        now = [0.0]
        queue = IngestionQueue(db, flush_size=100, flush_interval=1.0, clock=lambda: now[0])
        assert queue.append(logs=[_log(0)]) is False
        now[0] = 2.0
        assert queue.append(logs=[_log(1)]) is True
        assert db.count("logs") == 2
        assert queue.stats.interval_flushes == 1

    def test_interval_disabled_never_time_flushes(self, db):
        now = [0.0]
        queue = IngestionQueue(db, flush_size=100, flush_interval=None, clock=lambda: now[0])
        queue.append(logs=[_log(0)])
        now[0] = 1e9
        assert queue.append(logs=[_log(1)]) is False
        assert queue.pending == 2


class TestExplicitFlush:
    def test_flush_drains_everything(self, db):
        queue = IngestionQueue(db, flush_size=100, flush_interval=None)
        queue.append(logs=[_log(0), _log(1)], loops=[_loop(0)])
        assert queue.flush() == 3
        assert queue.pending == 0
        assert db.count("logs") == 2
        assert db.count("loops") == 1
        assert queue.stats.explicit_flushes == 1

    def test_flush_on_empty_queue_is_a_noop(self, db):
        queue = IngestionQueue(db, flush_size=100, flush_interval=None)
        assert queue.flush() == 0
        assert queue.stats.flushes == 0

    def test_one_transaction_per_flush(self, db, monkeypatch):
        queue = IngestionQueue(db, flush_size=100, flush_interval=None)
        queue.append(logs=[_log(i) for i in range(10)], loops=[_loop(0)])
        calls = []
        original = db.transaction

        def counting_transaction():
            calls.append(1)
            return original()

        monkeypatch.setattr(db, "transaction", counting_transaction)
        queue.flush()
        assert len(calls) == 1  # logs AND loops inside a single transaction
        assert db.count("logs") == 10
        assert db.count("loops") == 1

    def test_failed_flush_requeues_records(self, db, monkeypatch):
        queue = IngestionQueue(db, flush_size=100, flush_interval=None)
        queue.append(logs=[_log(0), _log(1)])

        def broken_transaction():
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(db, "transaction", broken_transaction)
        with pytest.raises(RuntimeError):
            queue.flush()
        monkeypatch.undo()
        assert queue.pending == 2
        assert queue.flush() == 2
        assert db.count("logs") == 2
