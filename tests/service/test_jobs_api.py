"""Tests for the durable-job HTTP endpoints of the multi-tenant service."""

from __future__ import annotations

import pytest

from repro.jobs import JobRunner, pool_session_provider
from repro.service import FlorService
from repro.webapp.framework import TestClient
from repro.workloads import BackfillJobWorkload

WORKLOAD = BackfillJobWorkload(projects=1, versions=2, epochs=2, steps=1)
PROJECT = WORKLOAD.project_names()[0]


@pytest.fixture()
def service(tmp_path):
    root = tmp_path / "host"
    WORKLOAD.populate(root)
    service = FlorService(root, flush_interval=None)
    yield service
    service.close()


@pytest.fixture()
def client(service):
    return TestClient(service.app())


def _submit(client, payload=None):
    body = {"filename": WORKLOAD.filename, "new_source": WORKLOAD.hindsight_source()}
    body.update(payload or {})
    return client.post(f"/projects/{PROJECT}/jobs/backfill", json_body=body)


class TestSubmit:
    def test_submit_persists_and_returns_202(self, client, service):
        response = _submit(client, {"priority": 2, "max_attempts": 5})
        assert response.status == 202
        job = response.json()["job"]
        assert job["state"] == "queued"
        assert job["project"] == PROJECT
        assert job["priority"] == 2
        assert job["max_attempts"] == 5
        # Durable: visible straight from the store, not just the response.
        assert service.jobs.require(job["id"]).state == "queued"

    def test_submit_to_unknown_project_is_404(self, client):
        response = client.post(
            "/projects/nosuch/jobs/backfill", json_body={"filename": "train.py"}
        )
        assert response.status == 404

    def test_submit_requires_filename(self, client):
        response = client.post(f"/projects/{PROJECT}/jobs/backfill", json_body={})
        assert response.status == 400

    def test_submit_validates_kind_versions_and_plan(self, client):
        assert _submit(client, {"kind": "nope"}).status == 400
        assert _submit(client, {"versions": "v1"}).status == 400
        assert _submit(client, {"versions": [1, 2]}).status == 400
        assert _submit(client, {"plan": [1]}).status == 400
        assert _submit(client, {"new_source": 42}).status == 400

    def test_submit_accepts_plan_and_versions(self, client):
        response = _submit(
            client, {"versions": ["abc"], "plan": {"epoch": [0]}, "include_latest": False}
        )
        assert response.status == 202
        payload = response.json()["job"]["payload"]
        assert payload["versions"] == ["abc"]
        assert payload["plan"] == {"epoch": [0]}
        assert payload["include_latest"] is False


class TestStatusAndEvents:
    def test_status_404_for_unknown_and_400_for_garbage_ids(self, client):
        assert client.get("/jobs/999").status == 404
        assert client.get("/jobs/banana").status == 400

    def test_status_reflects_the_store(self, client):
        job_id = _submit(client).json()["job"]["id"]
        body = client.get(f"/jobs/{job_id}").json()
        assert body["job"]["id"] == job_id
        assert body["job"]["state"] == "queued"

    def test_events_are_incremental_via_after(self, client, service):
        job_id = _submit(client).json()["job"]["id"]
        body = client.get(f"/jobs/{job_id}/events").json()
        assert [e["kind"] for e in body["events"]] == ["submitted"]
        last = body["last_seq"]
        service.jobs.record_event(job_id, "custom", {"x": 1})
        delta = client.get(f"/jobs/{job_id}/events?after={last}").json()
        assert [e["kind"] for e in delta["events"]] == ["custom"]

    def test_list_jobs_filters(self, client):
        first = _submit(client).json()["job"]["id"]
        second = _submit(client).json()["job"]["id"]
        body = client.get("/jobs").json()
        assert [j["id"] for j in body["jobs"]] == [second, first]
        assert client.get(f"/jobs?project={PROJECT}&limit=1").json()["jobs"][0]["id"] == second
        assert client.get("/jobs?state=succeeded").json()["jobs"] == []
        assert client.get("/jobs?state=bogus").status == 400

    def test_service_stats_reports_job_counts(self, client):
        _submit(client)
        stats = client.get("/service/stats").json()
        assert stats["jobs"]["queued"] == 1


class TestCancelAndRetry:
    def test_cancel_a_queued_job(self, client):
        job_id = _submit(client).json()["job"]["id"]
        body = client.post(f"/jobs/{job_id}/cancel").json()
        assert body["job"]["state"] == "cancelled"

    def test_retry_a_cancelled_job(self, client):
        job_id = _submit(client).json()["job"]["id"]
        client.post(f"/jobs/{job_id}/cancel")
        body = client.post(f"/jobs/{job_id}/retry")
        assert body.status == 200
        assert body.json()["job"]["state"] == "queued"

    def test_retry_of_a_queued_job_conflicts(self, client):
        job_id = _submit(client).json()["job"]["id"]
        assert client.post(f"/jobs/{job_id}/retry").status == 409

    def test_cancel_unknown_job_is_404(self, client):
        assert client.post("/jobs/7777/cancel").status == 404


class TestEndToEnd:
    def test_http_submitted_job_executes_against_the_pool(self, client, service):
        """Submit over HTTP, drain with pool-backed workers, read the column back."""
        before = client.get(f"/projects/{PROJECT}/dataframe?names=weight").json()
        assert all(r["weight"] is None for r in before["records"])

        job_id = _submit(client).json()["job"]["id"]
        runner = JobRunner(
            service.jobs,
            pool_session_provider(service.pool),
            workers=1,
            poll_interval=0.01,
        )
        assert runner.run_until_idle(timeout=60.0)

        body = client.get(f"/jobs/{job_id}").json()
        assert body["job"]["state"] == "succeeded"
        assert body["job"]["result"]["new_records"] == WORKLOAD.expected_new_records

        kinds = [e["kind"] for e in client.get(f"/jobs/{job_id}/events").json()["events"]]
        assert kinds[0] == "submitted" and kinds[-1] == "succeeded"
        assert kinds.count("version") == WORKLOAD.versions

        after = client.get(f"/projects/{PROJECT}/dataframe?names=weight").json()
        assert sum(1 for r in after["records"] if r["weight"] is not None) == (
            WORKLOAD.expected_new_records
        )
