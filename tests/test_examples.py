"""Smoke tests: every script in ``examples/`` runs cleanly under a tmpdir.

The seed shipped an example (``pdf_pipeline.py``) that crashed on import of
a missing module; this test exists so that an example referencing anything
absent from the library fails the suite immediately.  Each script is copied
into a temporary directory before running, so example state
(``example_runs/``, ``.flor/``) never lands in the repository.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_scripts():
    assert EXAMPLE_SCRIPTS, f"no example scripts found in {EXAMPLES_DIR}"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs_clean(script: Path, tmp_path):
    copy = tmp_path / script.name
    shutil.copy(script, copy)
    env = {
        "PATH": "/usr/bin:/bin",
        "PYTHONPATH": str(REPO_ROOT / "src"),
        "HOME": str(tmp_path),
    }
    result = subprocess.run(
        [sys.executable, str(copy)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{script.name} exited with {result.returncode}\n"
        f"--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
