"""Tests for the durable job store: state machine, leases, retries, events."""

from __future__ import annotations

import pytest

from repro.errors import JobError, JobNotFoundError
from repro.jobs import JobStore
from repro.jobs.store import JOBS_DB_FILENAME
from repro.relational.database import Database
from repro.testing import ManualClock


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def store(clock):
    with JobStore(Database(":memory:"), lease_seconds=10.0, retry_backoff=1.0, clock=clock) as s:
        yield s


class TestSubmission:
    def test_submit_returns_durable_queued_row(self, store, clock):
        job = store.submit("alpha", "backfill", {"filename": "train.py"}, priority=3)
        assert job.state == "queued"
        assert job.project == "alpha"
        assert job.kind == "backfill"
        assert job.payload == {"filename": "train.py"}
        assert job.priority == 3
        assert job.attempts == 0
        assert job.created_at == clock.now
        assert store.require(job.id).state == "queued"

    def test_submit_rejects_nonpositive_attempt_budget(self, store):
        with pytest.raises(JobError):
            store.submit("alpha", "backfill", {}, max_attempts=0)

    def test_open_creates_dotfile_outside_tenant_namespace(self, tmp_path):
        store = JobStore.open(tmp_path)
        try:
            store.submit("alpha", "backfill", {})
            assert (tmp_path / JOBS_DB_FILENAME).exists()
        finally:
            store.close()

    def test_require_unknown_job_raises(self, store):
        with pytest.raises(JobNotFoundError):
            store.require(999)
        assert store.get(999) is None


class TestClaiming:
    def test_claim_takes_ownership_and_counts_the_attempt(self, store, clock):
        job = store.submit("alpha", "backfill", {})
        claimed = store.claim("w1")
        assert claimed is not None and claimed.id == job.id
        assert claimed.state == "leased"
        assert claimed.lease_owner == "w1"
        assert claimed.lease_expires == clock.now + 10.0
        assert claimed.attempts == 1
        assert store.claim("w2") is None  # nothing else queued

    def test_claim_prefers_higher_priority_then_fifo(self, store):
        low = store.submit("alpha", "backfill", {}, priority=0)
        high = store.submit("alpha", "backfill", {}, priority=5)
        low2 = store.submit("alpha", "backfill", {}, priority=0)
        assert store.claim("w").id == high.id
        assert store.claim("w").id == low.id
        assert store.claim("w").id == low2.id

    def test_claim_respects_retry_backoff(self, store, clock):
        job = store.submit("alpha", "backfill", {}, max_attempts=2)
        store.claim("w1")
        store.mark_running(job.id, "w1")
        after = store.fail(job.id, "w1", "boom")
        assert after.state == "queued"
        assert store.claim("w1") is None  # not_before is in the future
        clock.advance(1.5)
        assert store.claim("w1").id == job.id

    def test_claim_skips_cancel_requested_rows(self, store):
        job = store.submit("alpha", "backfill", {})
        store.cancel(job.id)
        assert store.claim("w") is None


class TestLeaseAndHeartbeat:
    def test_heartbeat_renews_only_for_the_owner(self, store, clock):
        job = store.submit("alpha", "backfill", {})
        store.claim("w1")
        clock.advance(5.0)
        fresh = store.heartbeat(job.id, "w1")
        assert fresh is not None
        assert fresh.lease_expires == clock.now + 10.0
        assert store.heartbeat(job.id, "intruder") is None

    def test_expired_lease_is_reclaimed_to_queued(self, store, clock):
        job = store.submit("alpha", "backfill", {}, max_attempts=3)
        store.claim("w1")
        store.mark_running(job.id, "w1")
        clock.advance(11.0)  # worker died: lease lapsed
        reclaimed = store.claim("w2")
        assert reclaimed is not None and reclaimed.id == job.id
        assert reclaimed.lease_owner == "w2"
        assert reclaimed.attempts == 2
        kinds = [e.kind for e in store.events(job.id)]
        assert "lease_reclaimed" in kinds

    def test_expired_lease_with_spent_budget_fails_terminally(self, store, clock):
        job = store.submit("alpha", "backfill", {}, max_attempts=1)
        store.claim("w1")
        clock.advance(11.0)
        assert store.claim("w2") is None  # reclaimed straight to failed
        final = store.require(job.id)
        assert final.state == "failed"
        assert "lease expired" in final.error

    def test_finish_requires_ownership(self, store):
        job = store.submit("alpha", "backfill", {})
        store.claim("w1")
        assert store.finish(job.id, "other") is False
        assert store.finish(job.id, "w1", {"n": 1}) is True
        final = store.require(job.id)
        assert final.state == "succeeded"
        assert final.result == {"n": 1}
        assert final.terminal


class TestRetries:
    def test_fail_requeues_with_exponential_backoff_then_fails(self, store, clock):
        job = store.submit("alpha", "backfill", {}, max_attempts=3)
        delays = []
        for _ in range(2):
            clock.advance(100.0)
            claimed = store.claim("w")
            assert claimed is not None
            after = store.fail(job.id, "w", "boom")
            assert after.state == "queued"
            delays.append(after.not_before - clock.now)
        assert delays == [1.0, 2.0]  # retry_backoff * 2**(attempts-1)
        clock.advance(100.0)
        store.claim("w")
        final = store.fail(job.id, "w", "boom again")
        assert final.state == "failed"
        assert final.error == "boom again"

    def test_release_refunds_the_attempt(self, store, clock):
        job = store.submit("alpha", "backfill", {}, max_attempts=1)
        store.claim("w1")
        assert store.release(job.id, "w1", reason="shutdown") is True
        after = store.require(job.id)
        assert after.state == "queued"
        assert after.attempts == 0  # graceful hand-off does not burn budget
        assert store.claim("w2").id == job.id

    def test_retry_resets_a_terminal_job(self, store):
        job = store.submit("alpha", "backfill", {}, max_attempts=1)
        store.claim("w")
        store.fail(job.id, "w", "boom")
        retried = store.retry(job.id)
        assert retried.state == "queued"
        assert retried.attempts == 0
        assert retried.error is None

    def test_retry_rejects_non_terminal_jobs(self, store):
        job = store.submit("alpha", "backfill", {})
        with pytest.raises(JobError):
            store.retry(job.id)


class TestCancellation:
    def test_cancel_queued_is_immediate(self, store):
        job = store.submit("alpha", "backfill", {})
        cancelled = store.cancel(job.id)
        assert cancelled.state == "cancelled"
        assert cancelled.terminal

    def test_cancel_running_sets_the_flag_for_the_worker(self, store):
        job = store.submit("alpha", "backfill", {})
        store.claim("w1")
        store.mark_running(job.id, "w1")
        flagged = store.cancel(job.id)
        assert flagged.state == "running"  # still owned by the worker
        assert flagged.cancel_requested
        assert store.mark_cancelled(job.id, "w1") is True
        assert store.require(job.id).state == "cancelled"

    def test_cancel_terminal_job_is_a_noop(self, store):
        job = store.submit("alpha", "backfill", {})
        store.claim("w")
        store.finish(job.id, "w")
        assert store.cancel(job.id).state == "succeeded"

    def test_cancel_unknown_job_raises(self, store):
        with pytest.raises(JobNotFoundError):
            store.cancel(12345)


class TestEventsAndProgress:
    def test_lifecycle_appends_an_auditable_trail(self, store):
        job = store.submit("alpha", "backfill", {})
        store.claim("w1")
        store.mark_running(job.id, "w1")
        store.finish(job.id, "w1", {"ok": True})
        kinds = [e.kind for e in store.events(job.id)]
        assert kinds == ["submitted", "leased", "running", "succeeded"]

    def test_events_after_seq_is_incremental(self, store):
        job = store.submit("alpha", "backfill", {})
        first = store.events(job.id)
        assert len(first) == 1
        store.record_event(job.id, "custom", {"k": "v"})
        later = store.events(job.id, after=first[-1].seq)
        assert [e.kind for e in later] == ["custom"]
        assert later[0].payload == {"k": "v"}

    def test_version_checkpoints_drive_completed_versions(self, store):
        job = store.submit("alpha", "backfill", {})
        store.checkpoint_version(job.id, "v1", detail={"new_records": 4})
        store.checkpoint_version(job.id, "v2")
        # A failed version event must NOT count as completed.
        store.record_event(job.id, "version", {"vid": "v3", "ok": False, "error": "x"})
        assert store.completed_versions(job.id) == {"v1", "v2"}


class TestIntrospection:
    def test_counts_groups_by_state(self, store):
        a = store.submit("alpha", "backfill", {})
        store.submit("beta", "backfill", {})
        store.claim("w")
        store.finish(a.id, "w")
        counts = store.counts()
        assert counts["succeeded"] == 1
        assert counts["queued"] == 1
        assert counts["failed"] == 0

    def test_list_jobs_filters_by_project_and_state(self, store):
        a = store.submit("alpha", "backfill", {})
        b = store.submit("beta", "replay", {})
        assert [j.id for j in store.list_jobs()] == [b.id, a.id]  # newest first
        assert [j.id for j in store.list_jobs(project="alpha")] == [a.id]
        assert [j.id for j in store.list_jobs(state="queued", limit=1)] == [b.id]
        with pytest.raises(JobError):
            store.list_jobs(state="nope")

    def test_cross_handle_visibility(self, tmp_path, clock):
        """Two stores on the same file see each other's writes (two processes)."""
        first = JobStore.open(tmp_path, clock=clock)
        second = JobStore.open(tmp_path, clock=clock)
        try:
            job = first.submit("alpha", "backfill", {})
            claimed = second.claim("other-process")
            assert claimed is not None and claimed.id == job.id
            assert first.require(job.id).state == "leased"
        finally:
            first.close()
            second.close()


class TestCancelRaces:
    """Regressions for cancel interleaving with failures, releases and claims."""

    def test_requeued_job_with_pending_cancel_is_swept_to_cancelled(self, store, clock):
        """fail() after a cancel request must not strand the job as an
        unclaimable queued zombie — the next claim honors the cancel."""
        job = store.submit("alpha", "backfill", {}, max_attempts=3)
        store.claim("w1")
        store.mark_running(job.id, "w1")
        store.cancel(job.id)  # running: flag only
        # The version replay raises before the next boundary: fail re-queues.
        assert store.fail(job.id, "w1", "boom").state == "queued"
        clock.advance(100.0)
        assert store.claim("w2") is None  # sweep, then nothing claimable
        final = store.require(job.id)
        assert final.state == "cancelled"
        assert final.terminal
        counts = store.counts()
        assert counts["queued"] == 0  # drain loops can go idle

    def test_released_job_with_pending_cancel_is_swept_to_cancelled(self, store, clock):
        job = store.submit("alpha", "backfill", {})
        store.claim("w1")
        store.cancel(job.id)
        assert store.release(job.id, "w1", reason="shutdown") is True
        clock.advance(1.0)
        assert store.claim("w2") is None
        assert store.require(job.id).state == "cancelled"

    def test_cancel_losing_the_claim_race_does_not_fake_a_cancelled_event(self, store):
        """A cancel that arrives after a worker claimed the job must set the
        flag — and must not append a terminal 'cancelled' event."""
        job = store.submit("alpha", "backfill", {})
        store.claim("w1")  # the race: claimed before cancel's update runs
        flagged = store.cancel(job.id)
        assert flagged.state == "leased"
        assert flagged.cancel_requested
        kinds = [e.kind for e in store.events(job.id)]
        assert "cancelled" not in kinds
        assert "cancel_requested" in kinds


class TestWeightedFairClaiming:
    def test_every_fair_share_th_claim_takes_the_fifo_head(self, store):
        # store fixture uses the default fair_share=4: claims 4, 8, 12 …
        # go to the global FIFO head instead of the best priority.
        old_low = store.submit("batch", "backfill", {}, priority=-100)
        high = [store.submit("vip", "backfill", {}, priority=100) for _ in range(6)]
        claimed = [store.claim("w").id for _ in range(7)]
        # Claims 1-3 drain high-priority work; claim 4 is the fair turn and
        # picks the oldest queued job — the starved low-priority one.
        assert claimed[:3] == [j.id for j in high[:3]]
        assert claimed[3] == old_low.id
        assert claimed[4:] == [j.id for j in high[3:]]

    def test_fair_turn_is_a_noop_when_fifo_head_is_highest_priority(self, store):
        jobs = [store.submit("vip", "backfill", {}, priority=100) for _ in range(5)]
        assert [store.claim("w").id for _ in range(5)] == [j.id for j in jobs]

    def test_fair_share_zero_disables_fairness(self, clock):
        with JobStore(Database(":memory:"), fair_share=0, clock=clock) as store:
            low = store.submit("batch", "backfill", {}, priority=-100)
            high = [store.submit("vip", "backfill", {}, priority=100) for _ in range(8)]
            claimed = [store.claim("w").id for _ in range(9)]
            assert claimed == [j.id for j in high] + [low.id]  # pure priority order

    def test_fair_share_one_is_pure_fifo(self, clock):
        with JobStore(Database(":memory:"), fair_share=1, clock=clock) as store:
            low = store.submit("batch", "backfill", {}, priority=-100)
            high = store.submit("vip", "backfill", {}, priority=100)
            assert store.claim("w").id == low.id  # every claim is a fair turn
            assert store.claim("w").id == high.id

    def test_negative_fair_share_rejected(self, clock):
        with pytest.raises(JobError):
            JobStore(Database(":memory:"), fair_share=-1, clock=clock)
