"""Tests for the job executor and worker pool, including crash recovery."""

from __future__ import annotations

import pytest

from repro import ProjectConfig, Session
from repro.jobs import (
    JobCancelled,
    JobInterrupted,
    JobRunner,
    JobStore,
    directory_session_provider,
    execute_job,
)
from repro.testing import ManualClock
from repro.workloads import BackfillJobWorkload

WORKLOAD = BackfillJobWorkload(projects=1, versions=3, epochs=3, steps=2)


@pytest.fixture()
def populated_root(tmp_path):
    """A service root holding one tenant with three committed versions."""
    root = tmp_path / "root"
    vids = WORKLOAD.populate(root)
    return root, vids[WORKLOAD.project_names()[0]]


@pytest.fixture()
def store(populated_root):
    root, _ = populated_root
    with JobStore.open(root, lease_seconds=5.0, retry_backoff=0.01) as s:
        yield s


def _open_sessions(root):
    return directory_session_provider(root)


def _weight_rows(root) -> int:
    name = WORKLOAD.project_names()[0]
    with Session(ProjectConfig(root / name, name)) as session:
        return len(session.dataframe("weight"))


class TestExecutor:
    def test_backfill_job_materializes_the_missing_column(self, populated_root, store):
        root, vids = populated_root
        job_id = WORKLOAD.submit_all(store)[0]
        claimed = store.claim("w1")
        store.mark_running(job_id, "w1")
        summary = execute_job(claimed, store, _open_sessions(root), worker="w1")
        assert summary["versions_total"] == len(vids)
        assert summary["versions_replayed"] == len(vids)
        assert summary["new_records"] == WORKLOAD.expected_new_records
        assert store.completed_versions(job_id) == set(vids)
        assert _weight_rows(root) == WORKLOAD.expected_new_records

    def test_missing_filename_payload_is_a_job_error(self, populated_root, store):
        root, _ = populated_root
        from repro.errors import JobError

        job = store.submit(WORKLOAD.project_names()[0], "backfill", {})
        claimed = store.claim("w1")
        with pytest.raises(JobError):
            execute_job(claimed, store, _open_sessions(root), worker="w1")

    def test_should_stop_interrupts_between_versions(self, populated_root, store):
        root, vids = populated_root
        job_id = WORKLOAD.submit_all(store)[0]
        claimed = store.claim("w1")
        store.mark_running(job_id, "w1")
        calls = {"n": 0}

        def stop_after_one() -> bool:
            calls["n"] += 1
            return calls["n"] > 1

        with pytest.raises(JobInterrupted):
            execute_job(
                claimed, store, _open_sessions(root), worker="w1", should_stop=stop_after_one
            )
        assert len(store.completed_versions(job_id)) == 1

    def test_cancel_request_stops_the_job_at_a_version_boundary(self, populated_root, store):
        root, _ = populated_root
        job_id = WORKLOAD.submit_all(store)[0]
        claimed = store.claim("w1")
        store.mark_running(job_id, "w1")
        store.cancel(job_id)  # running: flags cancel_requested
        with pytest.raises(JobCancelled):
            execute_job(claimed, store, _open_sessions(root), worker="w1")

    def test_replay_kind_reexecutes_without_propagation(self, populated_root, store):
        root, vids = populated_root
        name = WORKLOAD.project_names()[0]
        job = store.submit(name, "replay", {"filename": WORKLOAD.filename})
        claimed = store.claim("w1")
        store.mark_running(job.id, "w1")
        summary = execute_job(claimed, store, _open_sessions(root), worker="w1")
        assert summary["versions_replayed"] == len(vids)
        # Replaying the recorded source is idempotent: values already exist.
        assert summary["new_records"] == 0
        assert _weight_rows(root) == 0  # no propagation happened


class TestRunner:
    def test_runner_drains_a_submitted_job_to_succeeded(self, populated_root, store):
        root, _ = populated_root
        job_id = WORKLOAD.submit_all(store)[0]
        runner = JobRunner(store, _open_sessions(root), workers=2, poll_interval=0.01)
        assert runner.run_until_idle(timeout=60.0)
        job = store.require(job_id)
        assert job.state == "succeeded"
        assert job.result["new_records"] == WORKLOAD.expected_new_records
        assert runner.stats.succeeded == 1
        assert _weight_rows(root) == WORKLOAD.expected_new_records

    def test_poison_job_fails_after_its_retry_budget(self, populated_root, store):
        root, _ = populated_root
        name = WORKLOAD.project_names()[0]
        # ghost.py has no committed versions and no working copy: the
        # executor raises before any version replays.
        job = store.submit(name, "backfill", {"filename": "ghost.py"}, max_attempts=2)
        runner = JobRunner(store, _open_sessions(root), workers=1, poll_interval=0.01)
        assert runner.run_until_idle(timeout=60.0)
        final = store.require(job.id)
        assert final.state == "failed"
        assert final.attempts == 2
        assert "ghost.py" in final.error
        kinds = [e.kind for e in store.events(job.id)]
        assert kinds.count("retry_scheduled") == 1
        assert kinds.count("failed") == 1

    def test_crash_and_resume_replays_only_unfinished_versions(self, populated_root):
        """Acceptance criterion: a restarted runner reclaims the lease and
        re-replays only versions without a recorded progress checkpoint."""
        root, vids = populated_root
        crash_after = 1
        clock = ManualClock()
        store = JobStore.open(root, lease_seconds=30.0, clock=clock)
        try:
            job_id = WORKLOAD.submit_all(store)[0]
            claimed = store.claim("doomed")
            store.mark_running(job_id, "doomed")
            calls = {"n": 0}

            def die_after_k() -> bool:
                calls["n"] += 1
                return calls["n"] > crash_after

            with pytest.raises(JobInterrupted):
                execute_job(
                    claimed, store, _open_sessions(root), worker="doomed", should_stop=die_after_k
                )
            # The worker "dies" here: no release, no fail — the lease just
            # stops being renewed, and the first checkpoint is durable.
            assert store.completed_versions(job_id) == {vids[0]}
            clock.advance(31.0)  # lease lapses without any real waiting

            runner = JobRunner(
                store, _open_sessions(root), workers=1, lease_seconds=10.0, poll_interval=0.01
            )
            assert runner.run_until_idle(timeout=60.0)
            job = store.require(job_id)
            assert job.state == "succeeded"
            assert job.result["versions_checkpointed"] == crash_after
            assert job.result["versions_replayed"] == len(vids) - crash_after

            kinds = [e.kind for e in store.events(job_id)]
            assert kinds.count("lease_reclaimed") == 1
            assert kinds.count("version") == len(vids)
        finally:
            store.close()
        # The backfilled column is complete despite the crash (no dupes,
        # no gaps): exactly one weight row per epoch x step x version.
        assert _weight_rows(root) == WORKLOAD.expected_new_records

    def test_graceful_stop_releases_inflight_work_without_burning_budget(
        self, populated_root, store
    ):
        root, _ = populated_root
        job_id = WORKLOAD.submit_all(store)[0]
        claimed = store.claim("w1")
        store.mark_running(job_id, "w1")
        with pytest.raises(JobInterrupted):
            execute_job(
                claimed, store, _open_sessions(root), worker="w1", should_stop=lambda: True
            )
        # What the runner does with JobInterrupted on shutdown:
        assert store.release(job_id, "w1", reason="shutdown") is True
        after = store.require(job_id)
        assert after.state == "queued"
        assert after.attempts == 0

    def test_runner_start_stop_lifecycle(self, populated_root, store):
        root, _ = populated_root
        runner = JobRunner(store, _open_sessions(root), workers=1, poll_interval=0.01)
        runner.start()
        assert runner.running
        runner.start()  # idempotent
        runner.stop(wait=True)
        assert not runner.running
        assert runner.active_jobs() == []


class TestSessionProviders:
    def test_directory_provider_rejects_unknown_projects(self, tmp_path):
        """A typo'd tenant must fail loudly, not succeed over a fresh empty
        project materialized as a side effect."""
        from repro.errors import JobError

        provider = directory_session_provider(tmp_path)
        with pytest.raises(JobError, match="unknown project"):
            with provider("no-such-tenant"):
                pass
        assert not (tmp_path / "no-such-tenant").exists()

    def test_job_for_unknown_project_fails_instead_of_noop_success(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        with JobStore.open(root, retry_backoff=0.01) as store:
            job = store.submit("typo", "backfill", {"filename": "train.py"}, max_attempts=1)
            runner = JobRunner(
                store, directory_session_provider(root), workers=1, poll_interval=0.01
            )
            assert runner.run_until_idle(timeout=30.0)
            final = store.require(job.id)
            assert final.state == "failed"
            assert "unknown project" in final.error


class TestFairSharePassthrough:
    def test_runner_overrides_store_fair_share(self, populated_root, store):
        root, _ = populated_root
        runner = JobRunner(store, _open_sessions(root), fair_share=2)
        assert store.fair_share == 2
        assert runner.store is store

    def test_runner_leaves_store_policy_alone_by_default(self, populated_root, store):
        root, _ = populated_root
        JobRunner(store, _open_sessions(root))
        assert store.fair_share == 4  # the store default, untouched

    def test_runner_rejects_negative_fair_share(self, populated_root, store):
        root, _ = populated_root
        with pytest.raises(ValueError):
            JobRunner(store, _open_sessions(root), fair_share=-2)
