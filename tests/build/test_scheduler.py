"""Tests for the wavefront scheduler."""

from __future__ import annotations

import threading

import pytest

from repro.build.dag import BuildGraph
from repro.build.makefile import Rule, parse_makefile
from repro.build.scheduler import ParallelScheduler
from repro.errors import BuildError

FAN = """\
all: w0 w1 w2 w3
\t@echo done
w0: gen.py
w1: gen.py
w2: gen.py
w3: gen.py
"""


@pytest.fixture()
def fan_graph():
    return BuildGraph(parse_makefile(FAN))


class TestSequential:
    def test_jobs_one_preserves_plan_order(self, fan_graph):
        plan = ["w0", "w1", "w2", "w3", "all"]
        executed = []
        completed = ParallelScheduler(fan_graph, jobs=1).run(plan, executed.append)
        assert completed == plan
        assert executed == plan

    def test_invalid_jobs_rejected(self, fan_graph):
        with pytest.raises(BuildError, match="jobs"):
            ParallelScheduler(fan_graph, jobs=0)


class TestParallel:
    def test_independent_targets_overlap(self, fan_graph):
        # All 4 workers must be in flight simultaneously for the barrier to
        # release; a sequential scheduler would deadlock (and time out).
        barrier = threading.Barrier(4, timeout=10)

        def execute(target):
            if target != "all":
                barrier.wait()

        completed = ParallelScheduler(fan_graph, jobs=4).run(
            ["w0", "w1", "w2", "w3", "all"], execute
        )
        assert set(completed) == {"w0", "w1", "w2", "w3", "all"}
        assert completed[-1] == "all"

    def test_dependencies_complete_before_dependents(self):
        graph = BuildGraph(
            [Rule("a", ()), Rule("b", ("a",)), Rule("c", ("a",)), Rule("d", ("b", "c"))]
        )
        order = []
        lock = threading.Lock()

        def execute(target):
            with lock:
                order.append(target)

        ParallelScheduler(graph, jobs=3).run(["a", "b", "c", "d"], execute)
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")
        assert order.index("d") == 3

    def test_failure_skips_dependents_and_propagates(self, fan_graph):
        executed = []
        lock = threading.Lock()

        def execute(target):
            if target == "w1":
                raise RuntimeError("w1 exploded")
            with lock:
                executed.append(target)

        with pytest.raises(BuildError, match="w1 exploded"):
            ParallelScheduler(fan_graph, jobs=2).run(["w0", "w1", "w2", "w3", "all"], execute)
        assert "all" not in executed  # downstream of the failure never ran

    def test_repro_errors_propagate_untouched(self, fan_graph):
        failure = BuildError("already typed")

        def execute(target):
            raise failure

        with pytest.raises(BuildError) as excinfo:
            ParallelScheduler(fan_graph, jobs=2).run(["w0", "w1"], execute)
        assert excinfo.value is failure
