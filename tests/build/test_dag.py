"""Tests for the build dependency graph."""

from __future__ import annotations

import pytest

from repro.build.dag import BuildGraph
from repro.build.makefile import Rule, parse_makefile
from repro.errors import CycleError, ReproError, TargetNotFoundError

DIAMOND = """\
final: left right
\t@echo done
left: base extra.txt
\t@touch left
right: base
\t@touch right
base: seed.txt
\t@touch base
"""


@pytest.fixture()
def graph():
    return BuildGraph(parse_makefile(DIAMOND))


class TestStructure:
    def test_dependencies_in_declaration_order(self, graph):
        assert graph.dependencies("final") == ["left", "right"]
        assert graph.dependencies("left") == ["base", "extra.txt"]

    def test_source_nodes_have_no_dependencies(self, graph):
        assert graph.dependencies("seed.txt") == []
        assert sorted(graph.sources()) == ["extra.txt", "seed.txt"]

    def test_dependents_reverse_edges(self, graph):
        assert graph.dependents("base") == ["left", "right"]
        assert graph.dependents("final") == []

    def test_leaves_are_final_goals(self, graph):
        assert graph.leaves() == ["final"]

    def test_is_target_distinguishes_sources(self, graph):
        assert graph.is_target("base")
        assert not graph.is_target("seed.txt")
        assert "seed.txt" in graph
        assert "ghost" not in graph

    def test_accepts_plain_rule_iterables(self):
        rules = [Rule("b", ("a.txt",)), Rule("c", ("b",))]
        graph = BuildGraph(rules)
        assert graph.targets == ["b", "c"]
        assert graph.leaves() == ["c"]


class TestOrdering:
    def test_topological_order_is_dependencies_first(self, graph):
        order = graph.topological_order("final")
        for target in ("left", "right", "base"):
            for dep in graph.dependencies(target):
                assert order.index(dep) < order.index(target)
        assert order[-1] == "final"

    def test_topological_order_is_deterministic(self, graph):
        assert graph.topological_order("final") == graph.topological_order("final")

    def test_goal_restricts_order_to_closure(self, graph):
        order = graph.topological_order("right")
        assert set(order) == {"seed.txt", "base", "right"}

    def test_closure(self, graph):
        assert graph.closure("left") == {"left", "base", "extra.txt", "seed.txt"}
        assert graph.closure("final") == {
            "final", "left", "right", "base", "extra.txt", "seed.txt",
        }

    def test_whole_graph_iteration(self, graph):
        order = list(graph)
        assert set(order) == graph.closure("final")

    def test_deep_chain_does_not_recurse(self):
        # 5000-deep chain: a recursive DFS would hit Python's stack limit.
        rules = [Rule(f"t{i}", (f"t{i - 1}",) if i else ()) for i in range(5000)]
        graph = BuildGraph(rules)
        order = graph.topological_order("t4999")
        assert order[0] == "t0" and order[-1] == "t4999"


class TestValidation:
    def test_cycle_detected_at_construction(self):
        with pytest.raises(CycleError) as excinfo:
            BuildGraph(parse_makefile("a: b\n\t@echo a\nb: c\n\t@echo b\nc: a\n\t@echo c\n"))
        assert set(excinfo.value.cycle) >= {"a", "b", "c"}

    def test_self_loop_is_a_cycle(self):
        with pytest.raises(CycleError):
            BuildGraph([Rule("a", ("a",))])

    def test_cycle_error_is_typed(self):
        with pytest.raises(ReproError):
            BuildGraph([Rule("a", ("a",))])

    def test_unknown_node_raises(self, graph):
        with pytest.raises(TargetNotFoundError, match="ghost"):
            graph.dependencies("ghost")
        with pytest.raises(TargetNotFoundError):
            graph.topological_order("ghost")
        with pytest.raises(TargetNotFoundError):
            graph.closure("ghost")
