"""Tests for the incremental build executor."""

from __future__ import annotations

import time

import pytest

from repro.build.executor import (
    BuildExecutor,
    CallableRunner,
    ShellRunner,
    fingerprint_path,
)
from repro.build.makefile import parse_makefile
from repro.errors import BuildError, TargetNotFoundError

CHAIN = """\
stage_a: input_a.txt
\t@touch stage_a
stage_b: stage_a input_b.txt
\t@touch stage_b
top: stage_b
\t@echo done
"""


@pytest.fixture()
def counting():
    """A CallableRunner over CHAIN that counts per-target executions."""
    counts: dict[str, int] = {}

    def stage(name):
        def run():
            counts[name] = counts.get(name, 0) + 1

        return run

    runner = CallableRunner({t: stage(t) for t in ("stage_a", "stage_b", "top")})
    return runner, counts


def make_executor(tmp_path, runner=None, text=CHAIN, **kwargs):
    return BuildExecutor(
        parse_makefile(text), workdir=tmp_path / "build", runner=runner, **kwargs
    )


class TestIncrementalPaths:
    def test_first_build_runs_everything_in_order(self, tmp_path, counting):
        runner, counts = counting
        executor = make_executor(tmp_path, runner)
        report = executor.build("top")
        assert report.executed == ["stage_a", "stage_b", "top"]
        assert counts == {"stage_a": 1, "stage_b": 1, "top": 1}
        assert all(r.reason == "never built" for r in report.results)

    def test_second_build_is_fully_cached(self, tmp_path, counting):
        runner, counts = counting
        executor = make_executor(tmp_path, runner)
        executor.build("top")
        report = executor.build("top")
        assert report.executed == []
        assert report.cached == ["stage_a", "stage_b", "top"]
        assert all(r.reason == "up to date" for r in report.results)

    def test_force_rebuilds_everything(self, tmp_path, counting):
        runner, counts = counting
        executor = make_executor(tmp_path, runner)
        executor.build("top")
        report = executor.build("top", force=True)
        assert report.executed == ["stage_a", "stage_b", "top"]
        assert all(r.reason == "forced" for r in report.results)
        assert counts["stage_a"] == 2

    def test_changed_input_rebuilds_only_downstream(self, tmp_path, counting):
        runner, counts = counting
        executor = make_executor(tmp_path, runner)
        executor.build("top")
        (tmp_path / "build" / "input_b.txt").write_text("changed\n")
        report = executor.build("top")
        assert report.executed == ["stage_b", "top"]
        assert counts["stage_a"] == 1
        reasons = {r.target: r.reason for r in report.results}
        assert reasons["stage_a"] == "up to date"
        assert "input_b.txt" in reasons["stage_b"]
        assert "stage_b" in reasons["top"]

    def test_default_target_is_first_rule(self, tmp_path, counting):
        runner, counts = counting
        executor = make_executor(tmp_path, runner)
        report = executor.build()
        assert report.goal == "stage_a"
        assert report.executed == ["stage_a"]

    def test_state_survives_a_new_executor_instance(self, tmp_path, counting):
        runner, _counts = counting
        make_executor(tmp_path, runner).build("top")
        fresh = make_executor(tmp_path, runner)
        assert fresh.build("top").executed == []

    def test_dependency_rebuilt_by_other_executor_invalidates(self, tmp_path, counting):
        runner, _counts = counting
        make_executor(tmp_path, runner).build("top")
        # Another executor rebuilds just stage_a; our executor must notice.
        make_executor(tmp_path, runner).build("stage_a", force=True)
        report = make_executor(tmp_path, runner).build("top")
        assert report.executed == ["stage_b", "top"]

    def test_invalidate_forgets_target_state(self, tmp_path, counting):
        runner, counts = counting
        executor = make_executor(tmp_path, runner)
        executor.build("top")
        executor.invalidate("stage_b")
        report = executor.build("top")
        assert report.executed == ["stage_b", "top"]
        executor.invalidate()
        assert executor.build("top").executed == ["stage_a", "stage_b", "top"]

    def test_unknown_target_raises(self, tmp_path, counting):
        runner, _ = counting
        with pytest.raises(TargetNotFoundError, match="ghost"):
            make_executor(tmp_path, runner).build("ghost")

    def test_phony_targets_always_run(self, tmp_path):
        text = ".PHONY: clean\nclean:\n\t@touch cleaned\nout: in.txt\n\t@touch out\n"
        calls = []
        runner = CallableRunner({"clean": lambda: calls.append("clean")})
        executor = make_executor(tmp_path, runner, text=text)
        executor.build("clean")
        report = executor.build("clean")
        assert report.executed == ["clean"]
        assert report.results[0].reason == "phony target"
        assert calls == ["clean", "clean"]
        # Non-phony targets still cache.
        executor.build("out")
        assert executor.build("out").executed == []


class TestHashModes:
    def _touch_only(self, path):
        time.sleep(0.002)
        path.touch()

    def test_auto_mode_rebuilds_on_touch(self, tmp_path, counting):
        runner, _ = counting
        executor = make_executor(tmp_path, runner, hash_mode="auto")
        executor.build("stage_a")
        self._touch_only(tmp_path / "build" / "input_a.txt")
        assert executor.build("stage_a").executed == ["stage_a"]

    def test_content_mode_ignores_touch_without_change(self, tmp_path, counting):
        runner, _ = counting
        executor = make_executor(tmp_path, runner, hash_mode="content")
        executor.build("stage_a")
        self._touch_only(tmp_path / "build" / "input_a.txt")
        assert executor.build("stage_a").executed == []
        (tmp_path / "build" / "input_a.txt").write_text("new content\n")
        assert executor.build("stage_a").executed == ["stage_a"]

    def test_unknown_mode_rejected(self, tmp_path, counting):
        runner, _ = counting
        with pytest.raises(BuildError, match="hash mode"):
            make_executor(tmp_path, runner, hash_mode="sha1")
        with pytest.raises(BuildError, match="hash mode"):
            fingerprint_path(tmp_path, mode="sha1")


class TestMissingPrerequisites:
    def test_materialized_as_stubs_by_default(self, tmp_path, counting):
        runner, _ = counting
        executor = make_executor(tmp_path, runner)
        executor.build("top")
        stub = tmp_path / "build" / "input_a.txt"
        assert stub.exists()
        assert "stub source" in stub.read_text()

    def test_strict_mode_raises_naming_the_files(self, tmp_path, counting):
        runner, _ = counting
        executor = make_executor(tmp_path, runner, materialize_missing=False)
        with pytest.raises(BuildError, match="input_a.txt"):
            executor.build("top")

    def test_strict_mode_passes_when_files_exist(self, tmp_path, counting):
        runner, counts = counting
        workdir = tmp_path / "build"
        workdir.mkdir()
        (workdir / "input_a.txt").write_text("a\n")
        (workdir / "input_b.txt").write_text("b\n")
        executor = make_executor(tmp_path, runner, materialize_missing=False)
        assert executor.build("top").executed == ["stage_a", "stage_b", "top"]


class TestRunners:
    def test_shell_runner_executes_recipes(self, tmp_path):
        executor = make_executor(
            tmp_path, ShellRunner(echo=False), text="out: in.txt\n\t@cp in.txt out\n"
        )
        (tmp_path / "build").mkdir()
        (tmp_path / "build" / "in.txt").write_text("payload\n")
        executor.build("out")
        assert (tmp_path / "build" / "out").read_text() == "payload\n"

    def test_shell_runner_failure_raises_build_error(self, tmp_path):
        executor = make_executor(tmp_path, ShellRunner(echo=False), text="out: in.txt\n\t@false\n")
        with pytest.raises(BuildError, match="recipe for target 'out' failed"):
            executor.build("out")

    def test_shell_runner_dash_prefix_ignores_failure(self, tmp_path):
        executor = make_executor(
            tmp_path, ShellRunner(echo=False), text="out: in.txt\n\t-false\n\t@touch out\n"
        )
        assert executor.build("out").executed == ["out"]
        assert (tmp_path / "build" / "out").exists()

    def test_shell_runner_echoes_unless_silent(self, tmp_path, capfd):
        executor = make_executor(
            tmp_path, ShellRunner(), text="out: in.txt\n\techo visible\n\t@echo silent-cmd\n"
        )
        executor.build("out")
        out = capfd.readouterr().out
        assert "echo visible" in out  # the command line itself is echoed
        assert "silent-cmd" in out  # output still shows
        assert "@echo" not in out

    def test_callable_runner_falls_back_to_shell(self, tmp_path):
        ran = []
        text = "bound: in.txt\n\t@false\nunbound: in.txt\n\t@touch unbound\n"
        runner = CallableRunner({"bound": lambda: ran.append("bound")})
        executor = make_executor(tmp_path, runner, text=text)
        executor.build("bound")  # callable wins over the failing shell recipe
        assert ran == ["bound"]
        executor.build("unbound")  # no callable: the shell recipe runs
        assert (tmp_path / "build" / "unbound").exists()

    def test_failure_keeps_completed_state(self, tmp_path):
        calls = []
        text = "a: in.txt\n\t@true\nb: a\n\t@true\n"

        def boom():
            raise RuntimeError("stage exploded")

        runner = CallableRunner({"a": lambda: calls.append("a"), "b": boom})
        executor = make_executor(tmp_path, runner, text=text)
        with pytest.raises(BuildError, match="stage exploded"):
            executor.build("b")
        # A fixed rerun resumes: stage a stays cached.
        fixed = CallableRunner({"a": lambda: calls.append("a"), "b": lambda: calls.append("b")})
        report = make_executor(tmp_path, fixed, text=text).build("b")
        assert report.executed == ["b"]
        assert calls == ["a", "b"]


class TestSessionRecording:
    def test_build_commits_and_records_dag(self, make_session, tmp_path):
        session = make_session("bdeps")
        runner = CallableRunner({t: (lambda: None) for t in ("stage_a", "stage_b", "top")})
        executor = make_executor(tmp_path, runner, session=session)
        report = executor.build("top")
        assert report.vid is not None
        rows = {r.target: r for r in session.build_deps.by_vid(report.vid)}
        assert set(rows) == {"stage_a", "stage_b", "top"}
        assert rows["stage_b"].deps == ("stage_a", "input_b.txt")
        assert rows["top"].cmds == ("@echo done",)
        assert not rows["top"].cached

    def test_partial_rebuild_marks_cached_targets(self, make_session, tmp_path):
        session = make_session("bdeps2")
        # Track a source file so each build snapshots a distinct version.
        tracked = session.config.root / "stages.py"
        tracked.write_text("STAGES = 1\n")
        session.track(tracked)
        runner = CallableRunner({t: (lambda: None) for t in ("stage_a", "stage_b", "top")})
        executor = make_executor(tmp_path, runner, session=session)
        first = executor.build("top")
        tracked.write_text("STAGES = 2\n")
        (tmp_path / "build" / "input_b.txt").write_text("changed\n")
        second = executor.build("top")
        assert second.vid != first.vid
        rows = {r.target: r for r in session.build_deps.by_vid(second.vid)}
        assert rows["stage_a"].cached
        assert not rows["stage_b"].cached
        # The first version's DAG rows are untouched.
        first_rows = {r.target: r for r in session.build_deps.by_vid(first.vid)}
        assert not first_rows["stage_a"].cached

    def test_unchanged_code_rebuild_updates_cached_flags_in_place(self, make_session, tmp_path):
        # Committing an unchanged manifest reuses the head vid (several
        # epochs map to one version), so the DAG rows for that vid are
        # refreshed — build_deps.cached is the schema's one mutable column.
        session = make_session("bdeps2b")
        runner = CallableRunner({t: (lambda: None) for t in ("stage_a", "stage_b", "top")})
        executor = make_executor(tmp_path, runner, session=session)
        first = executor.build("top")
        (tmp_path / "build" / "input_b.txt").write_text("changed\n")
        second = executor.build("top")
        assert second.vid == first.vid
        rows = {r.target: r for r in session.build_deps.by_vid(second.vid)}
        assert rows["stage_a"].cached
        assert not rows["stage_b"].cached

    def test_noop_build_reuses_last_vid_without_new_version(self, make_session, tmp_path):
        session = make_session("bdeps3")
        runner = CallableRunner({t: (lambda: None) for t in ("stage_a", "stage_b", "top")})
        executor = make_executor(tmp_path, runner, session=session)
        first = executor.build("top")
        versions_before = len(session.ts2vid.all(session.projid))
        second = executor.build("top")
        assert second.vid == first.vid
        assert len(session.ts2vid.all(session.projid)) == versions_before

    def test_commit_records_root_target(self, make_session, tmp_path):
        session = make_session("bdeps4")
        runner = CallableRunner({t: (lambda: None) for t in ("stage_a", "stage_b", "top")})
        make_executor(tmp_path, runner, session=session).build("top")
        epochs = session.ts2vid.all(session.projid)
        assert epochs[-1].root_target == "top"
