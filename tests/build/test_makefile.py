"""Tests for the Makefile parser."""

from __future__ import annotations

import pytest

from repro.build.makefile import Makefile, Rule, load_makefile, parse_makefile
from repro.errors import BuildError, MakefileError, ReproError, TargetNotFoundError

PIPELINE = """\
# The demo pipeline (Figure 4).
process_pdfs: pdf_demux.py
\t@python pdf_demux.py
\t@touch process_pdfs

featurize: process_pdfs featurize.py
\t@python featurize.py

run: featurize
\t@echo "Starting app..."
"""


class TestParsing:
    def test_targets_in_declaration_order(self):
        makefile = parse_makefile(PIPELINE)
        assert makefile.targets == ["process_pdfs", "featurize", "run"]
        assert makefile.default_target == "process_pdfs"

    def test_prerequisites_and_recipes(self):
        makefile = parse_makefile(PIPELINE)
        rule = makefile.get("featurize")
        assert rule.prerequisites == ("process_pdfs", "featurize.py")
        assert rule.recipe == ("@python featurize.py",)
        assert makefile.get("process_pdfs").recipe == (
            "@python pdf_demux.py",
            "@touch process_pdfs",
        )

    def test_comments_and_blank_lines_ignored(self):
        makefile = parse_makefile(
            "# leading comment\n\nout: in.txt  # trailing comment\n\n\t@touch out\n\n# done\n"
        )
        assert makefile.targets == ["out"]
        assert makefile.get("out").prerequisites == ("in.txt",)
        assert makefile.get("out").recipe == ("@touch out",)

    def test_backslash_continuation_joins_prerequisites(self):
        makefile = parse_makefile("all: a.txt \\\n     b.txt \\\n     c.txt\n\t@echo ok\n")
        assert makefile.get("all").prerequisites == ("a.txt", "b.txt", "c.txt")

    def test_multi_target_rule_shares_recipe(self):
        makefile = parse_makefile("left right: base.txt\n\t@touch $@\n")
        assert makefile.get("left").prerequisites == ("base.txt",)
        assert makefile.get("right").recipe == ("@touch $@",)
        assert makefile.get("left").recipe == ("@touch $@",)

    def test_phony_targets_flagged(self):
        makefile = parse_makefile(".PHONY: clean\nclean:\n\t@rm -f out\nbuild: in\n\t@touch build\n")
        assert makefile.get("clean").phony
        assert not makefile.get("build").phony

    def test_empty_makefile(self):
        makefile = parse_makefile("\n# only comments\n")
        assert len(makefile) == 0
        assert makefile.default_target is None


class TestDuplicateTargets:
    def test_prerequisites_merge_in_order(self):
        makefile = parse_makefile("out: a\n\t@touch out\nout: b a\n")
        assert makefile.get("out").prerequisites == ("a", "b")
        assert makefile.get("out").recipe == ("@touch out",)
        assert makefile.warnings == []

    def test_later_recipe_wins_with_warning(self):
        makefile = parse_makefile("out: a\n\t@echo first\nout: b\n\t@echo second\n")
        assert makefile.get("out").recipe == ("@echo second",)
        assert any("overriding recipe" in w for w in makefile.warnings)


class TestErrors:
    def test_recipe_before_any_target(self):
        with pytest.raises(MakefileError, match="recipe commences before first target"):
            parse_makefile("\t@echo orphan\n")

    def test_error_carries_line_number(self):
        with pytest.raises(MakefileError, match="Makefile:3"):
            parse_makefile("# one\n# two\nnot a rule line\n")

    def test_missing_separator(self):
        with pytest.raises(MakefileError, match="missing separator"):
            parse_makefile("just some words\n")

    def test_makefile_error_is_a_build_error(self):
        assert issubclass(MakefileError, BuildError)
        assert issubclass(MakefileError, ReproError)

    def test_unknown_target_lookup(self):
        makefile = parse_makefile(PIPELINE)
        with pytest.raises(TargetNotFoundError, match="ghost"):
            makefile.get("ghost")

    def test_load_makefile_missing_file(self, tmp_path):
        with pytest.raises(MakefileError, match="no such Makefile"):
            load_makefile(tmp_path / "Makefile")


class TestLoadMakefile:
    def test_round_trip_from_disk(self, tmp_path):
        path = tmp_path / "Makefile"
        path.write_text(PIPELINE)
        makefile = load_makefile(path)
        assert isinstance(makefile, Makefile)
        assert makefile.targets == ["process_pdfs", "featurize", "run"]
        assert all(isinstance(rule, Rule) for rule in makefile)
