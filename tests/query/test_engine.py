"""Tests for the QueryEngine façade and its wiring into Session and service."""

from __future__ import annotations

from repro.core.dataframe_view import build_dataframe
from repro.query import PivotViewCache, QueryEngine
from repro.service import FlorService
from repro.webapp.framework import TestClient


def record_runs(session, runs: int = 2, epochs: int = 3):
    for _run in range(runs):
        for epoch in session.loop("epoch", range(epochs)):
            session.log("loss", 1.0 / (1 + epoch))
            session.log("acc", 0.1 * epoch)
        session.commit("run")


class TestEngine:
    def test_dataframe_routes_through_cache(self, session):
        record_runs(session)
        engine = session.query
        first = engine.dataframe("loss", "acc")
        second = engine.dataframe("loss", "acc")
        assert second.equals(first)
        assert engine.stats.cold_builds == 1
        assert engine.stats.hits >= 1

    def test_latest_keyword_matches_post_filter(self, session):
        record_runs(session)
        from repro.relational.queries import latest

        assert session.dataframe("loss", latest=True).equals(
            latest(session.dataframe("loss"))
        )

    def test_tstamp_range_bypasses_cache_and_bounds_scan(self, session):
        record_runs(session, runs=2)
        full = session.dataframe("loss")
        tstamps = sorted(set(full["tstamp"].to_list()))
        assert len(tstamps) == 2
        sliced = session.dataframe("loss", tstamp_range=(tstamps[1], None))
        assert set(sliced["tstamp"].to_list()) == {tstamps[1]}
        assert len(sliced) == 3

    def test_session_flush_invalidates_view(self, session):
        record_runs(session, runs=1)
        before = session.dataframe("loss")
        for epoch in session.loop("epoch", range(3)):
            session.log("loss", 2.0 + epoch)
        after = session.dataframe("loss")  # dataframe() flushes first
        assert len(after) == len(before) + 3
        assert after.equals(build_dataframe(session.db, session.projid, ["loss"]))

    def test_sql_over_names_uses_cached_pivot(self, session):
        record_runs(session)
        engine = session.query
        engine.dataframe("loss", "acc")
        frame = session.sql(
            "SELECT tstamp, MAX(acc) AS best FROM pivot GROUP BY tstamp ORDER BY tstamp",
            names=["loss", "acc"],
        )
        assert len(frame) == 2
        assert engine.stats.cold_builds == 1  # the SQL read reused the view

    def test_shared_cache_across_engines(self, session):
        record_runs(session)
        shared = PivotViewCache()
        one = QueryEngine(session.db, session.projid, cache=shared)
        two = QueryEngine(session.db, session.projid, cache=shared)
        one.dataframe("loss")
        two.dataframe("loss")
        assert shared.stats.cold_builds == 1
        assert shared.stats.hits == 1

    def test_flush_bumps_shared_cache_before_engine_exists(self, make_session):
        """Regression: a session given a shared cache must invalidate it on
        flush even if its own query engine was never created — an engine on
        a *different* database handle sees neither our write_version nor,
        without the bump, any staleness signal."""
        from repro.relational.database import Database

        shared = PivotViewCache()
        session = make_session("sharedflush", query_cache=shared)
        other_db = Database(session.config.db_path)
        try:
            engine = QueryEngine(other_db, session.projid, cache=shared)
            session.log("m", 1.0)
            session.flush()
            assert engine.dataframe("m").row(0)["m"] == 1.0
            session.log("m", 2.0)
            session.flush()  # session's own engine still does not exist
            assert engine.dataframe("m").row(0)["m"] == 2.0
        finally:
            other_db.close()

    def test_rejected_sql_fails_before_pivot_builds(self, session):
        """Regression: the read-only guard must fire before the pivot work."""
        import pytest

        from repro.errors import DatabaseError

        record_runs(session)
        engine = session.query
        with pytest.raises(DatabaseError):
            engine.sql("DELETE FROM pivot", names=["loss"])
        assert engine.stats.cold_builds == 0


class TestServiceWiring:
    def test_dataframe_warm_across_requests_and_invalidated_by_ingest(self, tmp_path):
        """End-to-end: ingest -> read -> ingest -> read through HTTP routes."""
        service = FlorService(tmp_path / "svc", flush_size=4, flush_interval=None)
        client = TestClient(service.app())
        try:
            payload = {
                "filename": "load.py",
                "records": [
                    {"name": "metric", "value": i * 0.5, "ctx_id": 0} for i in range(4)
                ],
            }
            assert client.post("/projects/demo/logs", json_body=payload).status == 202
            first = client.get("/projects/demo/dataframe?names=metric").json()
            assert first["rows"] == 1  # ctx 0 records pivot to one top-level row
            second = client.get("/projects/demo/dataframe?names=metric").json()
            assert second == first

            with service.pool.checkout("demo") as shard:
                stats = shard.session.query.stats
                assert stats.cold_builds == 1
                assert stats.hits >= 1

            # A later run (fresh tstamp) must appear in the next read.
            more = {
                "filename": "load.py",
                "records": [
                    {"name": "metric", "value": 9.0, "ctx_id": 0, "tstamp": "2099-01-01T00:00:00"}
                ],
            }
            assert client.post("/projects/demo/logs", json_body=more).status == 202
            third = client.get("/projects/demo/dataframe?names=metric").json()
            assert third["rows"] == first["rows"] + 1

            with service.pool.checkout("demo") as shard:
                stats = shard.session.query.stats
                assert stats.incremental_refreshes >= 1
                assert stats.cold_builds == 1
            project_stats = client.get("/projects/demo/stats").json()
            assert project_stats["query_cache"]["cold_builds"] == 1
        finally:
            service.close()
