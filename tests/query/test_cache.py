"""Tests for the materialized pivot-view cache (repro.query.cache).

The invariant under test throughout: whatever tier serves a read — fast,
warm, incremental, or cold — the frame must equal a from-scratch
``build_dataframe`` over the same database.
"""

from __future__ import annotations

import pytest

from repro.core.dataframe_view import build_dataframe
from repro.query import PivotViewCache
from repro.relational.records import LogRecord, LoopRecord
from repro.relational.repositories import LogRepository, LoopRepository


def add_run(db, tstamp: str, *, loops: int = 3, names=("loss", "acc"), filename="train.py"):
    """One run of `loops` epoch iterations, each logging every name."""
    loop_repo, log_repo = LoopRepository(db), LogRepository(db)
    loop_rows, log_rows = [], []
    for i in range(loops):
        ctx = i + 1
        loop_rows.append(LoopRecord("p", tstamp, filename, ctx, 0, "epoch", i, str(i)))
        for j, name in enumerate(names):
            log_rows.append(LogRecord.create("p", tstamp, filename, ctx, name, i + j * 0.1))
    loop_repo.add_many(loop_rows)
    log_repo.add_many(log_rows)


class TestTiers:
    def test_cold_build_equals_rebuild(self, db):
        add_run(db, "t1")
        cache = PivotViewCache()
        frame = cache.dataframe(db, "p", ["loss", "acc"])
        assert frame.equals(build_dataframe(db, "p", ["loss", "acc"]))
        assert cache.stats.cold_builds == 1

    def test_fast_hit_serves_without_watermark_probe(self, db):
        add_run(db, "t1")
        cache = PivotViewCache()
        first = cache.dataframe(db, "p", ["loss"])
        second = cache.dataframe(db, "p", ["loss"])
        assert second.equals(first)
        assert cache.stats.fast_hits == 1
        assert cache.stats.cold_builds == 1

    def test_generation_bump_revalidates_to_warm_hit(self, db):
        add_run(db, "t1")
        cache = PivotViewCache()
        cache.dataframe(db, "p", ["loss"])
        cache.bump_generation("p")
        frame = cache.dataframe(db, "p", ["loss"])
        assert cache.stats.warm_hits == 1
        assert frame.equals(build_dataframe(db, "p", ["loss"]))

    def test_append_triggers_incremental_refresh(self, db):
        add_run(db, "t1")
        cache = PivotViewCache()
        cache.dataframe(db, "p", ["loss", "acc"])
        add_run(db, "t2")
        cache.bump_generation("p")
        frame = cache.dataframe(db, "p", ["loss", "acc"])
        assert cache.stats.incremental_refreshes == 1
        assert len(frame) == 6
        assert frame.equals(build_dataframe(db, "p", ["loss", "acc"]))

    def test_shared_handle_write_detected_without_generation_bump(self, db):
        """Writers sharing the Database handle are caught via write_version."""
        add_run(db, "t1")
        cache = PivotViewCache()
        cache.dataframe(db, "p", ["loss"])
        add_run(db, "t2")  # no bump_generation on purpose
        frame = cache.dataframe(db, "p", ["loss"])
        assert frame.equals(build_dataframe(db, "p", ["loss"]))
        assert cache.stats.fast_hits == 0

    def test_incremental_append_to_existing_run(self, db):
        """New records for an already-cached run merge into its rows."""
        add_run(db, "t1", loops=2)
        cache = PivotViewCache()
        cache.dataframe(db, "p", ["loss", "acc"])
        # The same run keeps going: two more epochs arrive later.
        loop_repo, log_repo = LoopRepository(db), LogRepository(db)
        for i in (2, 3):
            ctx = i + 1
            loop_repo.add(LoopRecord("p", "t1", "train.py", ctx, 0, "epoch", i, str(i)))
            log_repo.add(LogRecord.create("p", "t1", "train.py", ctx, "loss", float(i)))
            log_repo.add(LogRecord.create("p", "t1", "train.py", ctx, "acc", i + 0.1))
        frame = cache.dataframe(db, "p", ["loss", "acc"])
        assert len(frame) == 4
        assert frame.equals(build_dataframe(db, "p", ["loss", "acc"]))


class TestLoopRewrites:
    def test_replaced_loop_row_forces_run_reread(self, db):
        """INSERT OR REPLACE on a cached run's loop must refresh its annotations."""
        add_run(db, "t1", loops=2)
        cache = PivotViewCache()
        before = cache.dataframe(db, "p", ["loss"])
        assert "0" in before["epoch_value"].to_list()
        # Rewrite iteration 0's value; same primary key, fresh rowid.
        LoopRepository(db).add(LoopRecord("p", "t1", "train.py", 1, 0, "epoch", 0, "relabeled"))
        frame = cache.dataframe(db, "p", ["loss"])
        assert "relabeled" in frame["epoch_value"].to_list()
        assert frame.equals(build_dataframe(db, "p", ["loss"]))
        assert cache.stats.incremental_refreshes == 1


class TestPartition:
    def test_disjoint_names_merge_into_one_group_incrementally(self, db):
        """A delta run where two names first co-occur must coarsen the partition."""
        add_run(db, "t1", names=("a_metric",))
        add_run(db, "t2", names=("b_metric",), filename="infer.py")
        cache = PivotViewCache()
        split = cache.dataframe(db, "p", ["a_metric", "b_metric"])
        assert split.equals(build_dataframe(db, "p", ["a_metric", "b_metric"]))
        add_run(db, "t3", names=("a_metric", "b_metric"))
        cache.bump_generation("p")
        merged = cache.dataframe(db, "p", ["a_metric", "b_metric"])
        assert merged.equals(build_dataframe(db, "p", ["a_metric", "b_metric"]))

    def test_permutations_share_one_view_state(self, db):
        add_run(db, "t1")
        cache = PivotViewCache()
        forward = cache.dataframe(db, "p", ["loss", "acc"])
        backward = cache.dataframe(db, "p", ["acc", "loss"])
        assert len(cache) == 1
        assert cache.stats.cold_builds == 1
        assert forward.columns[-2:] == ["loss", "acc"]
        assert backward.columns[-2:] == ["acc", "loss"]
        assert backward.equals(build_dataframe(db, "p", ["acc", "loss"]))


class TestLifecycle:
    def test_returned_frames_are_isolated_copies(self, db):
        add_run(db, "t1")
        cache = PivotViewCache()
        frame = cache.dataframe(db, "p", ["loss"])
        frame["loss"] = [None] * len(frame)
        again = cache.dataframe(db, "p", ["loss"])
        assert again["loss"].to_list() != frame["loss"].to_list()

    def test_capacity_evicts_coldest_view(self, db):
        add_run(db, "t1")
        cache = PivotViewCache(capacity=1)
        cache.dataframe(db, "p", ["loss"])
        cache.dataframe(db, "p", ["acc"])
        assert len(cache) == 1
        assert cache.stats.evictions == 1

    def test_invalidate_drops_project_views(self, db):
        add_run(db, "t1")
        cache = PivotViewCache()
        cache.dataframe(db, "p", ["loss"])
        assert cache.invalidate("p") == 1
        assert len(cache) == 0
        cache.dataframe(db, "p", ["loss"])
        assert cache.stats.cold_builds == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PivotViewCache(capacity=0)

    def test_empty_names_returns_empty_frame(self, db):
        cache = PivotViewCache()
        frame = cache.dataframe(db, "p", [])
        assert frame.empty
        assert len(cache) == 0
