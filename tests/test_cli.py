"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.workloads import VersionedScriptWorkload


@pytest.fixture()
def recorded_project(tmp_path):
    """A project directory holding three recorded versions of train.py."""
    from repro import ProjectConfig, Session

    root = tmp_path / "proj"
    # No explicit projid: the CLI will resolve the same default (the directory
    # name), which is how a user would run it against an existing project.
    session = Session(ProjectConfig(root))
    workload = VersionedScriptWorkload(versions=3, epochs=3, steps=2)
    workload.record_all_versions(session)
    session.close()
    return root, workload


class TestQueries:
    def test_names_lists_log_names(self, recorded_project, capsys):
        root, _ = recorded_project
        assert main(["--project", str(root), "names"]) == 0
        out = capsys.readouterr().out
        assert "loss" in out
        assert "lr" in out

    def test_versions_lists_epochs(self, recorded_project, capsys):
        root, _ = recorded_project
        assert main(["--project", str(root), "versions"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4  # header + three epochs
        assert "version 0" in out

    def test_dataframe_prints_pivot(self, recorded_project, capsys):
        root, _ = recorded_project
        assert main(["--project", str(root), "dataframe", "loss"]) == 0
        out = capsys.readouterr().out
        assert "tstamp" in out and "loss" in out

    def test_dataframe_latest_restricts_rows(self, recorded_project, capsys):
        root, _ = recorded_project
        main(["--project", str(root), "dataframe", "loss"])
        full = capsys.readouterr().out
        main(["--project", str(root), "dataframe", "loss", "--latest"])
        latest = capsys.readouterr().out
        assert len(latest.splitlines()) < len(full.splitlines())

    def test_dataframe_since_until_pushdown(self, recorded_project, capsys):
        """--since/--until bound the scan; an impossible range prints no rows."""
        root, _ = recorded_project
        main(["--project", str(root), "dataframe", "loss"])
        full = capsys.readouterr().out
        assert main(
            ["--project", str(root), "dataframe", "loss", "--since", "9999"]
        ) == 0
        empty = capsys.readouterr().out
        assert len(empty.splitlines()) < len(full.splitlines())
        assert main(
            ["--project", str(root), "dataframe", "loss", "--since", "0", "--until", "9999"]
        ) == 0
        bounded = capsys.readouterr().out
        assert len(bounded.splitlines()) == len(full.splitlines())

    def test_sql_direct_and_pivot(self, recorded_project, capsys):
        root, _ = recorded_project
        assert main(["--project", str(root), "sql", "SELECT COUNT(*) AS n FROM logs"]) == 0
        assert "n" in capsys.readouterr().out
        assert (
            main(
                [
                    "--project",
                    str(root),
                    "sql",
                    "SELECT COUNT(*) AS rows FROM pivot",
                    "--names",
                    "loss",
                ]
            )
            == 0
        )
        assert "rows" in capsys.readouterr().out

    def test_sql_write_statement_fails_cleanly(self, recorded_project, capsys):
        root, _ = recorded_project
        assert main(["--project", str(root), "sql", "DELETE FROM logs"]) == 2
        assert "error" in capsys.readouterr().err

    def test_stats_counts_tables(self, recorded_project, capsys):
        root, _ = recorded_project
        assert main(["--project", str(root), "stats"]) == 0
        out = capsys.readouterr().out
        assert "logs" in out and "commits" in out

    def test_empty_project(self, tmp_path, capsys):
        assert main(["--project", str(tmp_path / "fresh"), "names"]) == 0
        assert "no log names" in capsys.readouterr().err


class TestBuild:
    @pytest.fixture()
    def make_project(self, tmp_path):
        """A project directory with a shell-recipe Makefile."""
        root = tmp_path / "buildproj"
        root.mkdir()
        (root / "in.txt").write_text("payload\n")
        (root / "Makefile").write_text(
            "out.txt: in.txt\n"
            "\t@cp in.txt out.txt\n"
            "final: out.txt\n"
            "\t@touch final\n"
        )
        return root

    def test_build_runs_shell_recipes(self, make_project, capsys):
        root = make_project
        assert main(["--project", str(root), "build", "final"]) == 0
        out = capsys.readouterr().out
        assert "RUN" in out and "built 'final': 2 executed" in out
        assert (root / "out.txt").read_text() == "payload\n"
        assert (root / "final").exists()

    def test_second_build_is_cached(self, make_project, capsys):
        root = make_project
        main(["--project", str(root), "build", "final"])
        capsys.readouterr()
        assert main(["--project", str(root), "build", "final"]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 2 cached" in out

    def test_force_and_jobs_flags(self, make_project, capsys):
        root = make_project
        main(["--project", str(root), "build", "final"])
        capsys.readouterr()
        assert main(["--project", str(root), "build", "final", "--force", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 executed" in out and "jobs=2" in out

    def test_default_target_is_first_rule(self, make_project, capsys):
        root = make_project
        assert main(["--project", str(root), "build"]) == 0
        assert "built 'out.txt'" in capsys.readouterr().out

    def test_build_records_version_and_deps(self, make_project, capsys):
        from repro import ProjectConfig, Session

        root = make_project
        assert main(["--project", str(root), "build", "final"]) == 0
        with Session(ProjectConfig(root)) as session:
            latest = session.ts2vid.latest(session.projid)
            assert latest is not None and latest.root_target == "final"
            targets = {r.target for r in session.build_deps.by_vid(latest.vid)}
        assert targets == {"out.txt", "final"}

    def test_no_record_skips_versioning(self, make_project, capsys):
        from repro import ProjectConfig, Session

        root = make_project
        assert main(["--project", str(root), "build", "final", "--no-record"]) == 0
        with Session(ProjectConfig(root)) as session:
            assert session.ts2vid.all(session.projid) == []

    def test_unknown_target_fails_cleanly(self, make_project, capsys):
        root = make_project
        assert main(["--project", str(root), "build", "ghost"]) == 2
        assert "no rule to make target" in capsys.readouterr().err

    def test_missing_makefile_fails_cleanly(self, tmp_path, capsys):
        root = tmp_path / "bare"
        assert main(["--project", str(root), "build", "x"]) == 2
        assert "no such Makefile" in capsys.readouterr().err

    def test_missing_prerequisite_fails_cleanly(self, make_project, capsys):
        root = make_project
        (root / "in.txt").unlink()
        assert main(["--project", str(root), "build", "final"]) == 2
        assert "missing prerequisite" in capsys.readouterr().err


class TestBackfill:
    def test_backfill_from_source_file(self, recorded_project, capsys, tmp_path):
        root, workload = recorded_project
        new_source = tmp_path / "new_train.py"
        new_source.write_text(workload.hindsight_source())
        exit_code = main(
            [
                "--project",
                str(root),
                "backfill",
                "train.py",
                "--source",
                str(new_source),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "new_records" in out
        # The new column is now queryable through the CLI as well.
        main(["--project", str(root), "dataframe", "weight"])
        assert "weight" in capsys.readouterr().out

    def test_backfill_with_iteration_restriction(self, recorded_project, tmp_path, capsys):
        root, workload = recorded_project
        new_source = tmp_path / "new_train.py"
        new_source.write_text(workload.hindsight_source())
        exit_code = main(
            [
                "--project",
                str(root),
                "backfill",
                "train.py",
                "--source",
                str(new_source),
                "--loop",
                "epoch",
                "--epoch",
                "2",
            ]
        )
        assert exit_code == 0
        assert "iterations_skipped" in capsys.readouterr().out

    def test_backfill_missing_script_fails(self, recorded_project, capsys):
        root, _ = recorded_project
        assert main(["--project", str(root), "backfill", "ghost.py"]) == 2
        assert "error" in capsys.readouterr().err


class TestServeParser:
    def test_serve_subcommand_is_wired(self):
        from repro.cli import _cmd_serve, build_parser

        args = build_parser().parse_args(
            ["--project", "/srv/flor", "serve", "--port", "0", "--flush-size", "32"]
        )
        assert args.func is _cmd_serve
        assert args.project == "/srv/flor"
        assert args.port == 0
        assert args.flush_size == 32
        assert args.pool_capacity == 8
        assert args.flush_interval == 0.5

    def test_serve_help_mentions_shards(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--help"])
        out = capsys.readouterr().out
        assert "shard" in out
        assert "--flush-size" in out


class TestBackfillDryRun:
    def test_dry_run_prints_the_patch_plan_without_replaying(
        self, recorded_project, capsys, tmp_path
    ):
        root, workload = recorded_project
        new_source = tmp_path / "new_train.py"
        new_source.write_text(workload.hindsight_source())
        exit_code = main(
            [
                "--project",
                str(root),
                "backfill",
                "train.py",
                "--source",
                str(new_source),
                "--dry-run",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "dry run: patch plan" in out
        assert 'flor.log("weight", state["w"])' in out
        assert "after old line" in out
        # Nothing was replayed: the weight column is still entirely empty.
        assert main(["--project", str(root), "sql",
                     "SELECT COUNT(*) AS n FROM logs WHERE value_name = 'weight'"]) == 0
        assert "0" in capsys.readouterr().out

    def test_dry_run_reports_dropped_statements(self, recorded_project, capsys, tmp_path):
        root, workload = recorded_project
        new_source = tmp_path / "new_train.py"
        new_source.write_text(
            workload.hindsight_source() + '\nif False:\n    flor.log("ghost", 1)'
        )
        assert main(
            [
                "--project",
                str(root),
                "backfill",
                "train.py",
                "--source",
                str(new_source),
                "--dry-run",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "dropped" in out
        assert "ghost" in out


@pytest.fixture()
def jobs_root(tmp_path):
    """A multi-tenant root with one populated project, as `serve` sees it."""
    from repro.workloads import BackfillJobWorkload

    workload = BackfillJobWorkload(projects=1, versions=2, epochs=2, steps=1)
    root = tmp_path / "host"
    workload.populate(root)
    source = tmp_path / "new_train.py"
    source.write_text(workload.hindsight_source())
    return root, workload, source


class TestJobsCli:
    def _submit(self, root, source, *extra):
        return main(
            [
                "--project",
                str(root),
                "jobs",
                "submit",
                "tenant_00",
                "train.py",
                "--source",
                str(source),
                *extra,
            ]
        )

    def test_submit_then_run_then_watch(self, jobs_root, capsys):
        root, workload, source = jobs_root
        assert self._submit(root, source) == 0
        assert "queued" in capsys.readouterr().out

        assert main(["--project", str(root), "jobs", "run", "--timeout", "60"]) == 0
        assert "succeeded=1" in capsys.readouterr().out

        assert main(["--project", str(root), "jobs", "watch", "1", "--timeout", "5"]) == 0
        out = capsys.readouterr().out
        assert "[succeeded]" in out
        assert "version" in out  # per-version progress events streamed

    def test_status_with_events(self, jobs_root, capsys):
        root, _, source = jobs_root
        self._submit(root, source)
        capsys.readouterr()
        assert main(["--project", str(root), "jobs", "status", "1", "--events"]) == 0
        out = capsys.readouterr().out
        assert "[queued]" in out
        assert "submitted" in out

    def test_cancel_then_retry_then_list(self, jobs_root, capsys):
        root, _, source = jobs_root
        self._submit(root, source)
        assert main(["--project", str(root), "jobs", "cancel", "1"]) == 0
        assert "[cancelled]" in capsys.readouterr().out
        assert main(["--project", str(root), "jobs", "retry", "1"]) == 0
        assert "[queued]" in capsys.readouterr().out
        assert main(["--project", str(root), "jobs", "list", "--state", "queued"]) == 0
        assert "job 1" in capsys.readouterr().out

    def test_retry_of_queued_job_errors_cleanly(self, jobs_root, capsys):
        root, _, source = jobs_root
        self._submit(root, source)
        capsys.readouterr()
        assert main(["--project", str(root), "jobs", "retry", "1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_job_id_errors_cleanly(self, jobs_root, capsys):
        root, _, _ = jobs_root
        assert main(["--project", str(root), "jobs", "status", "42"]) == 2
        assert "no such job" in capsys.readouterr().err


class TestJobsParser:
    def test_serve_gains_job_workers(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--job-workers", "3"])
        assert args.job_workers == 3
        assert build_parser().parse_args(["serve"]).job_workers == 0

    def test_jobs_submit_parser_carries_plan_flags(self):
        from repro.cli import _cmd_jobs_submit, build_parser

        args = build_parser().parse_args(
            ["jobs", "submit", "alpha", "train.py", "--epoch", "2", "3", "--priority", "1"]
        )
        assert args.func is _cmd_jobs_submit
        assert args.name == "alpha"
        assert args.epoch == [2, 3]
        assert args.priority == 1


class TestServeShutdownSignals:
    def test_sigterm_and_sigint_set_the_shutdown_event(self):
        """Container deployments stop `serve` with SIGTERM: the installed
        handler must route it into the shutdown event so workers drain."""
        import os
        import signal
        import threading

        from repro.cli import _install_shutdown_signals

        previous = {
            sig: signal.getsignal(sig) for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            event = threading.Event()
            _install_shutdown_signals(event)
            os.kill(os.getpid(), signal.SIGTERM)
            assert event.wait(timeout=5)

            event = threading.Event()
            _install_shutdown_signals(event)
            os.kill(os.getpid(), signal.SIGINT)
            assert event.wait(timeout=5)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)

    def test_installation_from_a_worker_thread_is_skipped_not_fatal(self):
        import threading

        from repro.cli import _install_shutdown_signals

        errors = []
        event = threading.Event()

        def attempt() -> None:
            try:
                _install_shutdown_signals(event)
            except Exception as exc:  # noqa: BLE001 - collected for assertion
                errors.append(exc)

        thread = threading.Thread(target=attempt)
        thread.start()
        thread.join()
        assert errors == []
