"""Unit tests for the tail broker: wakeups, lag eviction, backpressure."""

from __future__ import annotations

import threading

import pytest

from repro.errors import TailBackpressureError
from repro.obs import TailBroker


class TestSubscribePublish:
    def test_publish_wakes_only_that_streams_subscribers(self):
        broker = TailBroker()
        a = broker.subscribe("project:alpha")
        b = broker.subscribe("project:beta")
        assert broker.publish("project:alpha", rows=3) == 1
        assert a.wait(0) is True
        assert b.wait(0) is False

    def test_wait_blocks_until_notified_across_threads(self):
        broker = TailBroker()
        subscription = broker.subscribe("s")
        woken = []

        def consumer():
            woken.append(subscription.wait(5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        broker.publish("s")
        thread.join(timeout=5)
        assert woken == [True]

    def test_signal_is_latched_if_publish_races_ahead_of_wait(self):
        broker = TailBroker()
        subscription = broker.subscribe("s")
        broker.publish("s")  # before the consumer ever waits
        assert subscription.wait(0) is True
        assert subscription.wait(0) is False  # consumed

    def test_unsubscribe_removes_the_stream_when_empty(self):
        broker = TailBroker()
        subscription = broker.subscribe("s")
        subscription.close()
        assert broker.stats()["streams"] == 0
        assert broker.publish("s") == 0


class TestLagEviction:
    def test_slow_consumer_is_evicted_past_max_lag(self):
        broker = TailBroker(max_lag=10)
        slow = broker.subscribe("s")
        fast = broker.subscribe("s")
        broker.publish("s", rows=10)
        fast.advance(10, 10)
        assert slow.evicted is None  # lag == max_lag: still within bounds
        broker.publish("s", rows=1)
        fast.advance(11, 1)
        assert slow.evicted is not None
        assert fast.evicted is None
        assert broker.stats()["evicted_total"] == 1

    def test_rows_published_before_subscribing_never_count_as_lag(self):
        broker = TailBroker(max_lag=5)
        broker.publish("s", rows=1000)  # history
        late = broker.subscribe("s")
        broker.publish("s", rows=3)
        assert late.evicted is None
        assert late.lag() == 3.0

    def test_eviction_wakes_the_blocked_consumer(self):
        broker = TailBroker(max_lag=1)
        subscription = broker.subscribe("s")
        results = []

        def consumer():
            results.append(subscription.wait(5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        broker.publish("s", rows=5)  # lag 5 > 1: evict, which must wake
        thread.join(timeout=5)
        assert results == [True]
        assert subscription.evicted is not None


class TestBackpressure:
    def test_subscriber_cap_raises(self):
        broker = TailBroker(max_subscribers=2)
        broker.subscribe("a")
        broker.subscribe("b")
        with pytest.raises(TailBackpressureError):
            broker.subscribe("c")

    def test_unsubscribe_frees_a_slot(self):
        broker = TailBroker(max_subscribers=1)
        first = broker.subscribe("a")
        first.close()
        broker.subscribe("a")  # does not raise

    def test_close_evicts_everyone_and_refuses_new_subscriptions(self):
        broker = TailBroker()
        subscription = broker.subscribe("s")
        broker.close()
        assert subscription.evicted == "service shutting down"
        with pytest.raises(TailBackpressureError):
            broker.subscribe("s")

    def test_constructor_validates_bounds(self):
        with pytest.raises(ValueError):
            TailBroker(max_subscribers=0)
        with pytest.raises(ValueError):
            TailBroker(max_lag=0)


class TestStats:
    def test_stats_shape(self):
        broker = TailBroker(max_subscribers=5, max_lag=7)
        broker.subscribe("a")
        broker.subscribe("a")
        broker.subscribe("b")
        stats = broker.stats()
        assert stats["streams"] == 2
        assert stats["subscribers"] == 3
        assert stats["subscribed_total"] == 3
        assert stats["per_stream"] == {"a": 2, "b": 1}
        assert stats["max_subscribers"] == 5
        assert stats["max_lag"] == 7
