"""Unit tests for the access-log wrapper: timing, sampling, tenant parsing."""

from __future__ import annotations

import pytest

from repro.obs import AccessLog, MetricsRegistry, tenant_of
from repro.webapp.framework import JsonResponse, Request, Response


class _App:
    def __init__(self, status: int = 200, boom: Exception | None = None):
        self.status = status
        self.boom = boom

    def handle(self, request: Request) -> Response:
        if self.boom is not None:
            raise self.boom
        return JsonResponse({"ok": True}, status=self.status)


def _get(path: str) -> Request:
    return Request("GET", path)


class TestTenantOf:
    def test_project_paths_yield_the_tenant(self):
        assert tenant_of("/projects/alpha/logs") == "alpha"
        assert tenant_of("/projects/alpha") == "alpha"

    def test_everything_else_is_a_dash(self):
        assert tenant_of("/service/stats") == "-"
        assert tenant_of("/") == "-"
        assert tenant_of("/projects/") == "-"


class TestAccessLog:
    def test_emits_structured_line(self):
        lines: list[str] = []
        wrapped = AccessLog(_App(), emit=lines.append)
        wrapped.handle(_get("/projects/alpha/stats"))
        assert len(lines) == 1
        method, path, status, latency, tenant = lines[0].split(" ")
        assert (method, path, status, tenant) == ("GET", "/projects/alpha/stats", "200", "alpha")
        assert float(latency) >= 0.0

    def test_metrics_count_requests_and_latency(self):
        registry = MetricsRegistry()
        wrapped = AccessLog(_App(), registry)
        wrapped.handle(_get("/x"))
        wrapped.handle(_get("/y"))
        snap = registry.snapshot()
        assert snap["counters"]["http.requests"] == 2.0
        assert "http.errors" not in snap["counters"]
        assert snap["histograms"]["http.request_ms"]["count"] == 2

    def test_handler_exception_counts_as_500_and_reraises(self):
        registry = MetricsRegistry()
        lines: list[str] = []
        wrapped = AccessLog(_App(boom=RuntimeError("x")), registry, emit=lines.append)
        with pytest.raises(RuntimeError):
            wrapped.handle(_get("/projects/beta/sql"))
        assert registry.snapshot()["counters"]["http.errors"] == 1.0
        assert " 500 " in lines[0]

    def test_4xx_responses_are_not_errors(self):
        registry = MetricsRegistry()
        AccessLog(_App(status=404), registry).handle(_get("/nope"))
        assert "http.errors" not in registry.snapshot()["counters"]

    def test_sampling_is_deterministic_every_nth(self):
        lines: list[str] = []
        registry = MetricsRegistry()
        wrapped = AccessLog(_App(), registry, emit=lines.append, sample=3)
        for i in range(7):
            wrapped.handle(_get(f"/r{i}"))
        # Requests 1, 4, 7 are emitted; metrics see all seven.
        assert [line.split(" ")[1] for line in lines] == ["/r0", "/r3", "/r6"]
        assert registry.snapshot()["counters"]["http.requests"] == 7.0

    def test_sample_must_be_positive(self):
        with pytest.raises(ValueError):
            AccessLog(_App(), sample=0)
