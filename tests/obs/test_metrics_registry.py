"""Unit tests for the metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge()
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3.0

    def test_add_is_relative(self):
        gauge = Gauge()
        gauge.add(2)
        gauge.add(-5)
        assert gauge.value == -3.0


class TestHistogram:
    def test_percentiles_over_small_window(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        snap = histogram.summary()
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(5050.0)
        assert snap["max"] == 100.0
        assert 45.0 <= snap["p50"] <= 55.0
        assert 90.0 <= snap["p95"] <= 100.0

    def test_empty_snapshot_is_all_zero(self):
        snap = Histogram().summary()
        assert snap == {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}

    def test_ring_buffer_keeps_lifetime_count_past_the_window(self):
        histogram = Histogram(window=8)
        for value in range(100):
            histogram.observe(float(value))
        snap = histogram.summary()
        assert snap["count"] == 100  # lifetime, not window
        # The window only holds the most recent 8 observations.
        assert snap["p50"] >= 92.0

    def test_rejects_degenerate_window(self):
        with pytest.raises(ValueError):
            Histogram(window=0)


class TestMetricsRegistry:
    def test_instruments_are_created_on_first_use_and_reused(self):
        registry = MetricsRegistry()
        registry.inc("a.rows", 2)
        registry.inc("a.rows", 3)
        registry.set("a.depth", 9)
        registry.observe("a.ms", 1.5)
        assert registry.counter("a.rows") is registry.counter("a.rows")
        snap = registry.snapshot()
        assert snap["counters"]["a.rows"] == 5.0
        assert snap["gauges"]["a.depth"] == 9.0
        assert snap["histograms"]["a.ms"]["count"] == 1

    def test_snapshot_is_json_shaped(self):
        registry = MetricsRegistry()
        registry.inc("x")
        snap = registry.snapshot()
        assert set(snap) == {"uptime_seconds", "counters", "gauges", "histograms"}
        assert snap["uptime_seconds"] >= 0.0

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                registry.inc("hot")
                registry.observe("hot.ms", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
        assert snap["counters"]["hot"] == 8000.0
        assert snap["histograms"]["hot.ms"]["count"] == 8000
