"""Unit tests for the ``repro monitor`` frame renderer (pure dict → text)."""

from __future__ import annotations

from repro.obs.monitor import counter_rates, render_frame


def _service_snapshot(**overrides):
    snapshot = {
        "uptime_seconds": 12.0,
        "open_shards": 2,
        "counters": {"flush.rows": 100.0, "pool.hits": 5.0},
        "gauges": {"flush.pending_rows": 3.0},
        "histograms": {"flush.ms": {"count": 10, "sum": 12.0, "p50": 1.0, "p95": 2.0, "p99": 3.0, "max": 4.0}},
        "tail": {"streams": 1, "subscribers": 2, "subscribed_total": 4, "evicted_total": 1},
        "jobs": {"queued": 1, "running": 0},
    }
    snapshot.update(overrides)
    return snapshot


class TestCounterRates:
    def test_rates_are_per_second_deltas(self):
        rates = counter_rates({"a": 30.0, "b": 5.0}, {"a": 10.0}, elapsed=2.0)
        assert rates["a"] == 10.0
        assert rates["b"] == 2.5  # new counter: previous value 0

    def test_no_previous_frame_means_no_rates(self):
        assert counter_rates({"a": 1.0}, None, elapsed=1.0) == {}
        assert counter_rates({"a": 1.0}, {"a": 0.0}, elapsed=None) == {}

    def test_counter_reset_reports_no_rate_instead_of_negative(self):
        # A restarted worker resets its registry; the monitor must not
        # render a wildly negative rate for that frame.
        assert counter_rates({"a": 3.0}, {"a": 100.0}, elapsed=1.0) == {}


class TestRenderFrame:
    def test_service_frame_carries_every_section(self):
        text = render_frame(_service_snapshot())
        assert "[service] up 12s shards 2" in text
        assert "jobs: queued=1  running=0" in text
        assert "tail: subscribers=2 streams=1" in text
        assert "flush.rows" in text and "100" in text
        assert "(gauge)" in text
        assert "p50=1.00 p95=2.00 p99=3.00 (n=10)" in text

    def test_rates_appear_when_a_previous_frame_is_given(self):
        previous = _service_snapshot(counters={"flush.rows": 40.0})
        text = render_frame(_service_snapshot(), previous=previous, elapsed=2.0)
        assert "(+30.0/s)" in text

    def test_lead_counters_render_before_the_alphabetical_rest(self):
        text = render_frame(_service_snapshot())
        assert text.index("flush.rows") < text.index("pool.hits")

    def test_router_fanin_frame(self):
        snapshot = {
            "role": "router",
            "fleet": {"registered": 2, "alive": 2},
            "counters": {"flush.rows": 10.0},
            "gauges": {},
            "tail": {"streams": 0, "subscribers": 0, "subscribed_total": 0, "evicted_total": 0},
            "jobs": {"queued": 0},
            "workers": {
                "w0": {"open_shards": 1, "tail": {"subscribers": 3}},
                "w1": {"error": "worker not registered"},
            },
        }
        text = render_frame(snapshot)
        assert "[router] workers 2/2" in text
        assert "worker w0: shards=1 subscribers=3" in text
        assert "worker w1: ERROR worker not registered" in text

    def test_minimal_snapshot_does_not_crash(self):
        assert render_frame({}) == "[service]"
