"""Tests for context bookkeeping and timestamp generation."""

from __future__ import annotations

import threading

from repro.core.context import (
    TOP_LEVEL_CTX,
    ContextState,
    TimestampGenerator,
    stringify_iteration_value,
)


class TestTimestampGenerator:
    def test_strictly_increasing(self):
        generator = TimestampGenerator()
        stamps = [generator.next() for _ in range(200)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_iso_like_format(self):
        stamp = TimestampGenerator().next()
        assert "T" in stamp and "." in stamp
        assert len(stamp.split(".")[-1]) == 6

    def test_thread_safety_produces_unique_stamps(self):
        generator = TimestampGenerator()
        results: list[str] = []
        lock = threading.Lock()

        def worker():
            for _ in range(50):
                stamp = generator.next()
                with lock:
                    results.append(stamp)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == len(results)


class TestContextState:
    def test_top_level_context(self):
        ctx = ContextState("train.py")
        assert ctx.current_ctx_id == TOP_LEVEL_CTX
        assert ctx.depth == 0
        assert ctx.loop_path() == ()

    def test_ctx_id_allocation_is_sequential(self):
        ctx = ContextState("train.py")
        assert [ctx.allocate_ctx_id() for _ in range(3)] == [1, 2, 3]

    def test_reserve_ctx_id_advances_counter(self):
        ctx = ContextState("train.py")
        ctx.reserve_ctx_id(10)
        assert ctx.allocate_ctx_id() == 11

    def test_nested_loop_frames(self):
        ctx = ContextState("train.py")
        outer = ctx.push_loop("epoch")
        outer.ctx_id = ctx.allocate_ctx_id()
        outer.iteration = 0
        inner = ctx.push_loop("step")
        assert inner.parent_ctx_id == outer.ctx_id
        assert ctx.depth == 2
        assert ctx.loop_path() == (("epoch", 0), ("step", -1))
        ctx.pop_loop(inner)
        ctx.pop_loop(outer)
        assert ctx.depth == 0

    def test_pop_unwinds_abandoned_frames(self):
        ctx = ContextState("train.py")
        outer = ctx.push_loop("epoch")
        ctx.push_loop("step")  # abandoned inner frame (generator never closed)
        ctx.pop_loop(outer)
        assert ctx.depth == 0

    def test_pop_unknown_frame_is_safe(self):
        ctx = ContextState("train.py")
        frame = ctx.push_loop("epoch")
        ctx.pop_loop(frame)
        ctx.pop_loop(frame)  # double pop must not raise
        assert ctx.depth == 0


class TestStringify:
    def test_none_passthrough(self):
        assert stringify_iteration_value(None) is None

    def test_truncates_long_values(self):
        text = stringify_iteration_value("x" * 1000, limit=64)
        assert len(text) == 64
        assert text.endswith("...")

    def test_plain_values(self):
        assert stringify_iteration_value(7) == "7"
        assert stringify_iteration_value("doc.pdf") == "doc.pdf"
