"""Tests for replay plans and replay-mode sessions."""

from __future__ import annotations

import textwrap

import pytest

from repro import ProjectConfig, Session, active_session, flor
from repro.core.replay import ReplayPlan, replay_source
from repro.core.session import REPLAY
from repro.errors import ReplayError

RECORD_SOURCE = textwrap.dedent(
    """
    lr = flor.arg("lr", 0.25)
    state = {"w": 0.0}
    with flor.checkpointing(state=state):
        for epoch in flor.loop("epoch", range(4)):
            state["w"] += lr * (epoch + 1)
            flor.log("loss", 1.0 / (1.0 + state["w"]))
    """
).strip()

#: Same script with an extra statement, as produced by propagation.
REPLAY_SOURCE = RECORD_SOURCE.replace(
    'flor.log("loss", 1.0 / (1.0 + state["w"]))',
    'flor.log("loss", 1.0 / (1.0 + state["w"]))\n        flor.log("weight", state["w"])',
)


@pytest.fixture()
def recorded(project):
    """Record one run of the script and return (session, tstamp)."""
    session = Session(project, cli_args={"lr": 0.5})
    namespace = {"__file__": "train.py", "flor": flor}
    with active_session(session):
        exec(compile(RECORD_SOURCE, "train.py", "exec"), namespace)  # noqa: S102
        session.commit("v1")
    tstamp = session.ts2vid.all(session.projid)[0].ts_start
    yield session, tstamp
    session.close()


class TestReplayPlan:
    def test_default_plan_selects_everything(self):
        plan = ReplayPlan.all()
        assert plan.is_total()
        assert plan.selects("epoch", 100)

    def test_only_restricts_named_loops(self):
        plan = ReplayPlan.only(epoch=[2, 3])
        assert plan.selects("epoch", 2)
        assert not plan.selects("epoch", 0)
        assert plan.selects("step", 7)  # unnamed loops run fully

    def test_dict_roundtrip(self):
        plan = ReplayPlan.only(epoch=range(2), step=[0])
        assert ReplayPlan.from_dict(plan.to_dict()).selections == plan.selections
        assert ReplayPlan.from_dict(None).is_total()


class TestReplaySession:
    def test_replay_requires_tstamp(self, project):
        with pytest.raises(ReplayError):
            Session(project, mode=REPLAY, default_filename="train.py")

    def test_arg_returns_historical_value(self, recorded, project):
        session, tstamp = recorded
        result = replay_source(
            REPLAY_SOURCE,
            config=project,
            filename="train.py",
            tstamp=tstamp,
            db=session.db,
        )
        assert result.ok
        # Historical lr was 0.5 (not the script default 0.25); weights reflect it.
        frame = session.dataframe("weight")
        assert frame.row(0)["weight"] == pytest.approx(0.5)

    def test_replay_attributes_new_logs_to_original_tstamp(self, recorded, project):
        session, tstamp = recorded
        replay_source(REPLAY_SOURCE, config=project, filename="train.py", tstamp=tstamp, db=session.db)
        frame = session.dataframe("weight")
        assert set(frame["tstamp"].to_list()) == {tstamp}

    def test_replay_deduplicates_existing_log_values(self, recorded, project):
        session, tstamp = recorded
        before = len(session.logs.by_names(session.projid, ["loss"]))
        result = replay_source(
            REPLAY_SOURCE, config=project, filename="train.py", tstamp=tstamp, db=session.db
        )
        after = len(session.logs.by_names(session.projid, ["loss"]))
        assert before == after  # loss values already existed; only weight is new
        assert result.new_log_records == 4

    def test_replay_is_idempotent(self, recorded, project):
        session, tstamp = recorded
        first = replay_source(REPLAY_SOURCE, config=project, filename="train.py", tstamp=tstamp, db=session.db)
        second = replay_source(REPLAY_SOURCE, config=project, filename="train.py", tstamp=tstamp, db=session.db)
        assert first.new_log_records == 4
        assert second.new_log_records == 0

    def test_replay_reuses_recorded_ctx_ids(self, recorded, project):
        session, tstamp = recorded
        replay_source(REPLAY_SOURCE, config=project, filename="train.py", tstamp=tstamp, db=session.db)
        frame = session.dataframe("loss", "weight")
        # weight joins loss on the same per-epoch rows: no row has one without the other.
        assert len(frame) == 4
        assert not frame.weight.isna().any()
        assert not frame.loss.isna().any()

    def test_differential_replay_skips_unselected_iterations(self, recorded, project):
        session, tstamp = recorded
        result = replay_source(
            REPLAY_SOURCE,
            config=project,
            filename="train.py",
            tstamp=tstamp,
            db=session.db,
            plan=ReplayPlan.only(epoch=[3]),
        )
        assert result.iterations_executed < 4
        assert result.iterations_skipped >= 1

    def test_differential_replay_restores_state_from_checkpoints(self, recorded, project):
        """Replaying only the last epoch must produce the same weight as a full replay."""
        session, tstamp = recorded
        full = replay_source(
            REPLAY_SOURCE, config=project, filename="train.py", tstamp=tstamp, db=session.db
        )
        assert full.ok
        full_weights = {row["epoch"]: row["weight"] for row in session.dataframe("weight").to_records()}

        # Fresh project replaying only epoch 3 — weight at epoch 3 must match.
        partial = replay_source(
            REPLAY_SOURCE,
            config=project,
            filename="train.py",
            tstamp=tstamp,
            db=session.db,
            plan=ReplayPlan.only(epoch=[3]),
            collect_only=True,
        )
        partial_weights = {
            record.ctx_id: record.decoded()
            for record in partial.pending_logs
            if record.value_name == "weight"
        }
        # Nothing new was pending for epoch 3 (already written by the full replay),
        # so validate via execution stats instead: state closure executed epochs
        # between the restored checkpoint and the target only.
        assert partial.iterations_executed <= 4
        assert full_weights[3] == pytest.approx(0.5 * (1 + 2 + 3 + 4))

    def test_replay_reports_syntax_errors(self, recorded, project):
        session, tstamp = recorded
        result = replay_source("def broken(:\n", config=project, filename="train.py", tstamp=tstamp, db=session.db)
        assert not result.ok
        assert "syntax" in result.error.lower()

    def test_replay_reports_runtime_errors(self, recorded, project):
        session, tstamp = recorded
        result = replay_source(
            "raise ValueError('boom')\n", config=project, filename="train.py", tstamp=tstamp, db=session.db
        )
        assert not result.ok
        assert "ValueError" in result.error

    def test_collect_only_returns_records_without_writing(self, recorded, project):
        session, tstamp = recorded
        result = replay_source(
            REPLAY_SOURCE,
            config=project,
            filename="train.py",
            tstamp=tstamp,
            db=session.db,
            plan=ReplayPlan.all(),
            collect_only=True,
        )
        assert result.new_log_records == 4
        assert len(result.pending_logs) == 4
        assert session.dataframe("weight").empty
