"""Session-level tests for the async record path (repro.runtime wiring)."""

from __future__ import annotations

import pytest

from repro import ProjectConfig, Session
from repro.errors import RecordingError
from repro.relational.database import Database
from repro.runtime import ASYNC, SYNC


class TestFlushModes:
    def test_record_sessions_default_to_async(self, session):
        assert session.flush_mode == ASYNC
        assert session.flusher.mode == ASYNC

    def test_replay_sessions_default_to_sync(self, project):
        with Session(project, default_filename="t.py") as recorder:
            recorder.log("acc", 1.0)
            recorder.commit()
        with Session(
            project,
            mode="replay",
            default_filename="t.py",
            replay_tstamp="2020-01-01T00:00:00.000000",
        ) as replayer:
            assert replayer.flush_mode == SYNC

    def test_explicit_sync_mode(self, project):
        with Session(project, default_filename="t.py", flush_mode="sync") as session:
            assert session.flusher.mode == SYNC
            session.log("acc", 1.0)
            session.flush()
            assert session.logs.count() == 1

    def test_invalid_flush_mode_rejected(self, project):
        with pytest.raises(RecordingError):
            Session(project, flush_mode="weird")


class TestAsyncFlush:
    def test_flush_is_a_read_your_writes_barrier(self, session):
        for i in range(50):
            session.log("acc", i * 0.1)
        session.flush()
        assert session.logs.count() == 50
        assert session.pending_records == 0

    def test_flush_without_wait_hands_off_and_returns(self, session):
        session.log("acc", 1.0)
        session.flush(wait=False)
        assert session.pending_log_records == 0  # staged rows left the buffer
        session.flush()  # barrier
        assert session.logs.count() == 1

    def test_stage_threshold_submits_in_the_background(self, session):
        session._stage_threshold = 10
        for i in range(25):
            session.log("acc", float(i))
        # At least two threshold crossings submitted without an explicit flush.
        assert session.flusher.stats.submitted_batches >= 2
        session.flush()
        assert session.logs.count() == 25

    def test_dataframe_after_async_logging_sees_every_row(self, session):
        for epoch in session.loop("epoch", range(5)):
            session.log("loss", 1.0 / (epoch + 1))
        frame = session.dataframe("loss")
        assert len(frame) == 5

    def test_iteration_auto_index_survives_background_submits(self, session):
        session._stage_threshold = 1  # force a submit on every log
        with session.iteration("document", None, "a.pdf"):
            session.log("pages", 3)
        with session.iteration("document", None, "b.pdf"):
            session.log("pages", 5)
        session.flush()
        iterations = sorted(
            r.loop_iteration
            for r in session.loops.all(session.projid)
            if r.loop_name == "document"
        )
        assert iterations == [0, 1]

    def test_iteration_auto_index_continues_after_explicit_and_loops(self, session):
        with session.iteration("document", 7, "x.pdf"):
            pass
        with session.iteration("document", None, "y.pdf"):
            pass  # continues past the explicit index
        for _ in session.loop("page", range(3)):
            pass
        with session.iteration("page", None, "extra"):
            pass  # continues past the recorded loop iterations
        session.flush()
        documents = sorted(
            r.loop_iteration
            for r in session.loops.all(session.projid)
            if r.loop_name == "document"
        )
        pages = sorted(
            r.loop_iteration
            for r in session.loops.all(session.projid)
            if r.loop_name == "page"
        )
        assert documents == [7, 8]
        assert pages == [0, 1, 2, 3]

    def test_iteration_auto_index_restarts_each_epoch(self, session):
        with session.iteration("document", None, "a.pdf"):
            pass
        session.commit("epoch 1")
        with session.iteration("document", None, "b.pdf"):
            pass
        session.flush()
        iterations = [
            r.loop_iteration
            for r in session.loops.all(session.projid)
            if r.loop_name == "document"
        ]
        assert iterations == [0, 0]  # fresh tstamp, fresh numbering


class TestFlushFailure:
    def test_sync_flush_failure_keeps_records_for_retry(self, project, monkeypatch):
        """Regression: a failed inline write must not lose staged records."""
        with Session(project, default_filename="t.py", flush_mode="sync") as session:
            session.log("acc", 0.9)

            def broken_transaction():
                raise RuntimeError("disk on fire")

            monkeypatch.setattr(session.db, "transaction", broken_transaction)
            with pytest.raises(RuntimeError):
                session.flush()
            monkeypatch.undo()
            assert session.pending_records == 1  # restored, not dropped
            session.flush()
            assert session.logs.count() == 1


class TestLifecycle:
    def test_close_flushes_staged_records(self, tmp_path):
        config = ProjectConfig(tmp_path / "proj", "p").ensure_layout()
        db = Database(config.db_path)
        session = Session(config, db=db, default_filename="t.py")
        session.log("acc", 0.9)
        session.close()
        assert db.count("logs") == 1
        db.close()

    def test_checkpoints_drain_before_commit(self, session):
        state = {"w": 0.0}
        with session.checkpointing(state=state):
            for epoch in session.loop("epoch", range(3)):
                state["w"] += 1.0
                session.log("w", state["w"])
        session.commit("run")
        # After the commit barrier every saved checkpoint is durable.
        assert session.checkpoints.saved >= 1
        stored = session.objects.count()
        assert stored >= session.checkpoints.saved
