"""Tests for the pivoted flor.dataframe construction."""

from __future__ import annotations

import pytest

from repro.core.dataframe_view import build_dataframe


class TestSingleRunPivot:
    def test_epoch_level_metrics_one_row_per_epoch(self, session):
        for epoch in session.loop("epoch", range(3)):
            session.log("acc", 0.5 + epoch * 0.1)
            session.log("recall", 0.4 + epoch * 0.1)
        frame = session.dataframe("acc", "recall")
        assert len(frame) == 3
        assert frame.columns[:3] == ["projid", "tstamp", "filename"]
        assert frame["acc"].to_list() == pytest.approx([0.5, 0.6, 0.7])
        assert frame["recall"].to_list() == pytest.approx([0.4, 0.5, 0.6])

    def test_mixed_depth_broadcasts_shallow_values_down(self, session):
        for epoch in session.loop("epoch", range(2)):
            for step in session.loop("step", range(2)):
                session.log("loss", epoch * 10 + step)
            session.log("acc", 0.9 + epoch * 0.01)
        frame = session.dataframe("loss", "acc")
        assert len(frame) == 4  # one row per step
        by_epoch = {}
        for row in frame.to_records():
            by_epoch.setdefault(row["epoch"], set()).add(row["acc"])
        assert by_epoch[0] == {0.9}
        assert by_epoch[1] == {0.91}

    def test_broadcast_is_last_write_wins(self, session):
        """Re-logging a shallow value overwrites its earlier broadcast.

        Regression for the dead ``setdefault``-then-overwrite in the
        broadcast loop: when the same name is logged twice at the same
        shallow position, append order decides — the later value must land
        on every deeper row, exactly as it would for deep-level re-logs.
        """
        for epoch in session.loop("epoch", range(2)):
            for step in session.loop("step", range(2)):
                session.log("loss", epoch * 10 + step)
            session.log("acc", 0.1)  # provisional value...
            session.log("acc", 0.9 + epoch)  # ...corrected before the epoch ends
        frame = session.dataframe("loss", "acc")
        assert len(frame) == 4
        by_epoch = {}
        for row in frame.to_records():
            by_epoch.setdefault(row["epoch"], set()).add(row["acc"])
        assert by_epoch[0] == {0.9}
        assert by_epoch[1] == {1.9}

    def test_dimension_value_columns_present(self, session):
        for doc in session.loop("document", ["a.pdf", "b.pdf"]):
            session.log("n_pages", len(doc))
        frame = session.dataframe("n_pages")
        assert "document" in frame.columns
        assert "document_value" in frame.columns
        assert frame["document_value"].to_list() == ["a.pdf", "b.pdf"]

    def test_top_level_log_single_row(self, session):
        session.log("seed", 42)
        frame = session.dataframe("seed")
        assert len(frame) == 1
        assert frame.row(0)["seed"] == 42

    def test_empty_request_and_unknown_name(self, session):
        assert session.dataframe().empty
        frame = session.dataframe("never_logged")
        assert frame.empty
        assert "never_logged" in frame.columns


class TestMultiRunPivot:
    def test_rows_from_all_versions_included(self, session):
        for run in range(3):
            for epoch in session.loop("epoch", range(2)):
                session.log("acc", run + epoch * 0.1)
            session.commit(f"run {run}")
        frame = session.dataframe("acc")
        assert len(frame) == 6
        assert frame["tstamp"].nunique() == 3

    def test_latest_run_selectable_via_tstamp(self, session):
        from repro.relational.queries import latest

        for run in range(2):
            for _epoch in session.loop("epoch", range(2)):
                session.log("acc", run)
            session.commit()
        newest = latest(session.dataframe("acc"))
        assert set(newest["acc"].to_list()) == {1}


class TestCrossFileJoin:
    """The Figure 6 scenario: featurization and feedback live in different files."""

    @pytest.fixture()
    def populated(self, session):
        # featurize.py logs first_page per (document, page)
        for doc in session.loop("document", ["a.pdf", "b.pdf"], filename="featurize.py"):
            for page in session.loop("page", range(3), filename="featurize.py"):
                session.log("first_page", 1 if page == 0 else 0, filename="featurize.py")
        session.commit("featurize")
        # app.py records expert colors for a.pdf only
        with session.iteration("document", None, "a.pdf", filename="app.py"):
            for page in session.loop("page", range(3), filename="app.py"):
                session.log("page_color", page, filename="app.py")
        session.commit("feedback")
        return session

    def test_left_join_keeps_every_featurized_page(self, populated):
        frame = populated.dataframe("first_page", "page_color")
        assert len(frame) == 6  # 2 documents × 3 pages

    def test_feedback_values_align_on_document_and_page(self, populated):
        frame = populated.dataframe("first_page", "page_color")
        a_rows = frame[frame.document_value == "a.pdf"].sort_values("page")
        assert a_rows["page_color"].to_list() == [0, 1, 2]

    def test_unlabelled_document_has_missing_colors(self, populated):
        frame = populated.dataframe("first_page", "page_color")
        b_rows = frame[frame.document_value == "b.pdf"]
        assert b_rows.page_color.isna().all()

    def test_figure6_fallback_colors_from_first_page(self, populated):
        frame = populated.dataframe("first_page", "page_color")
        b_rows = frame[frame.document_value == "b.pdf"].sort_values("page")
        color = b_rows["first_page"].astype(int).cumsum()
        b_rows["page_color"] = (color - 1).to_list()
        assert b_rows["page_color"].to_list() == [0, 0, 0]

    def test_newest_feedback_wins(self, populated):
        # A second round of expert feedback overrides the first.
        with populated.iteration("document", None, "a.pdf", filename="app.py"):
            for page in populated.loop("page", range(3), filename="app.py"):
                populated.log("page_color", 9, filename="app.py")
        populated.commit("second feedback")
        frame = populated.dataframe("first_page", "page_color")
        a_rows = frame[frame.document_value == "a.pdf"]
        assert set(a_rows["page_color"].to_list()) == {9}


class TestBuildDataframeDirect:
    def test_requested_name_order_preserved(self, session):
        for _ in session.loop("epoch", range(1)):
            session.log("b_metric", 1)
            session.log("a_metric", 2)
        session.flush()
        frame = build_dataframe(session.db, session.projid, ["a_metric", "b_metric"])
        assert frame.columns[-2:] == ["a_metric", "b_metric"]
