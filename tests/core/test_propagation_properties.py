"""Property-based tests for cross-version statement propagation.

The invariants that must hold no matter how the old version was refactored:

* the patched source always parses,
* propagation never duplicates a statement that already logs the same name,
* propagation is idempotent (patching a patched source changes nothing),
* the number of flor statements only ever grows by the number injected.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings, strategies as st

from repro.core.propagation import find_flor_statements, propagate_statements

_NEW_SOURCE = """
lr = flor.arg("lr", 0.01)
state = {"w": 0.0}
with flor.checkpointing(state=state):
    for epoch in flor.loop("epoch", range(4)):
        state["w"] += lr
        flor.log("loss", 1.0 / (1.0 + state["w"]))
        flor.log("weight", state["w"])
""".strip()


@st.composite
def refactored_old_source(draw) -> str:
    """An 'older version': same loop, randomly shifted and decorated."""
    top_comments = draw(st.integers(min_value=0, max_value=6))
    helper = draw(st.booleans())
    trailing = draw(st.booleans())
    lr_default = draw(st.sampled_from(["0.01", "0.05", "0.1"]))
    epochs = draw(st.integers(min_value=2, max_value=6))
    parts = [f"# note {i}" for i in range(top_comments)]
    if helper:
        parts += ["def helper(x):", "    return x * 2", ""]
    parts += [
        f'lr = flor.arg("lr", {lr_default})',
        'state = {"w": 0.0}',
        "with flor.checkpointing(state=state):",
        f'    for epoch in flor.loop("epoch", range({epochs})):',
        '        state["w"] += lr',
        '        flor.log("loss", 1.0 / (1.0 + state["w"]))',
    ]
    if trailing:
        parts += ["", 'flor.log("done", True)']
    return "\n".join(parts)


@settings(max_examples=60, deadline=None)
@given(refactored_old_source())
def test_property_patched_source_parses_and_gains_only_new_names(old_source):
    result = propagate_statements(old_source, _NEW_SOURCE)
    ast.parse(result.patched_source)

    old_names = {(s.call_name, s.logged_name) for s in find_flor_statements(old_source)}
    patched_names = [
        (s.call_name, s.logged_name) for s in find_flor_statements(result.patched_source)
    ]
    # Nothing that existed before is duplicated.
    for key in old_names:
        assert patched_names.count(key) == 1
    # The new 'weight' statement is present exactly once.
    assert patched_names.count(("log", "weight")) == 1


@settings(max_examples=60, deadline=None)
@given(refactored_old_source())
def test_property_propagation_is_idempotent(old_source):
    once = propagate_statements(old_source, _NEW_SOURCE)
    twice = propagate_statements(once.patched_source, _NEW_SOURCE)
    assert twice.injected_count == 0
    assert twice.patched_source == once.patched_source
