"""Tests for checkpoint policies and the checkpoint manager."""

from __future__ import annotations

import pytest

from repro.core.checkpoint import (
    AdaptiveCheckpointPolicy,
    CheckpointKey,
    CheckpointManager,
    EveryIterationPolicy,
    FixedIntervalPolicy,
    NeverCheckpointPolicy,
)
from repro.errors import CheckpointError
from repro.ml.mlp import MLPClassifier
from repro.relational.repositories import ObjectRepository


@pytest.fixture()
def manager(db):
    return CheckpointManager(ObjectRepository(db))


def key(ctx_id: int, loop: str = "epoch") -> CheckpointKey:
    return CheckpointKey("p", "t1", "train.py", ctx_id, loop)


class TestPolicies:
    def test_every_iteration(self):
        policy = EveryIterationPolicy()
        assert all(policy.should_checkpoint(i, 0.1, 0.1) for i in range(5))

    def test_never(self):
        policy = NeverCheckpointPolicy()
        assert not any(policy.should_checkpoint(i, 0.1, 0.1) for i in range(5))

    def test_fixed_interval(self):
        policy = FixedIntervalPolicy(interval=3)
        decisions = [policy.should_checkpoint(i, 0.1, 0.1) for i in range(6)]
        assert decisions == [False, False, True, False, False, True]

    def test_fixed_interval_zero_disables(self):
        policy = FixedIntervalPolicy(interval=0)
        assert not policy.should_checkpoint(0, 0.1, 0.1)

    def test_adaptive_always_checkpoints_first_iteration(self):
        policy = AdaptiveCheckpointPolicy()
        assert policy.should_checkpoint(0, 0.0, 0.0)

    def test_adaptive_spaces_out_when_checkpoints_are_expensive(self):
        policy = AdaptiveCheckpointPolicy(max_overhead=0.1)
        # Iteration costs 0.01s, checkpoint costs 0.01s → period = ceil(0.01/(0.1*0.01)) = 10.
        decisions = [policy.should_checkpoint(i, 0.01, 0.01) for i in range(1, 25)]
        assert sum(decisions) <= 3

    def test_adaptive_checkpoints_densely_when_iterations_are_slow(self):
        policy = AdaptiveCheckpointPolicy(max_overhead=0.1)
        # Iteration costs 1s, checkpoint costs 0.01s → period 1 → every iteration.
        decisions = [policy.should_checkpoint(i, 1.0, 0.01) for i in range(1, 6)]
        assert all(decisions)


class TestManagerSaveRestore:
    def test_registration_bookkeeping(self, manager):
        assert not manager.has_registrations
        manager.register({"state": {"w": 1}})
        assert manager.registered_names == ["state"]
        manager.clear()
        assert not manager.has_registrations

    def test_save_and_load_roundtrip(self, manager):
        manager.register({"state": {"w": 3.5}})
        manager.save(key(1))
        assert manager.saved == 1
        assert manager.load(key(1)) == {"state": {"w": 3.5}}
        assert manager.load(key(99)) is None

    def test_restore_mutates_dict_in_place(self, manager):
        state = {"w": 0.0}
        manager.register({"state": state})
        state["w"] = 5.0
        manager.save(key(1))
        state["w"] = 123.0
        assert manager.restore(key(1))
        assert state["w"] == 5.0  # same object, contents restored

    def test_restore_mutates_list_in_place(self, manager):
        history = [1, 2]
        manager.register({"history": history})
        manager.save(key(2))
        history.append(3)
        manager.restore(key(2))
        assert history == [1, 2]

    def test_restore_missing_checkpoint_returns_false(self, manager):
        manager.register({"state": {}})
        assert manager.restore(key(42)) is False

    def test_restore_uses_load_state_dict_for_models(self, manager):
        model = MLPClassifier(4, 2, hidden_sizes=(3,), seed=0)
        original = model.state_dict()
        manager.register({"model": model})
        manager.save(key(1))
        # Perturb the weights, then restore.
        model.layers[0].W += 1.0
        manager.restore(key(1))
        restored = model.state_dict()
        for name in original:
            assert (original[name] == restored[name]).all()

    def test_maybe_save_respects_policy(self, db):
        manager = CheckpointManager(ObjectRepository(db), policy=NeverCheckpointPolicy())
        manager.register({"state": {}})
        assert manager.maybe_save(key(1), iteration=0, iter_seconds=0.1) is False
        assert manager.saved == 0

    def test_maybe_save_without_registrations_is_noop(self, manager):
        assert manager.maybe_save(key(1), iteration=0, iter_seconds=0.1) is False

    def test_unpicklable_object_raises_checkpoint_error(self, manager):
        manager.register({"bad": lambda x: x})  # lambdas cannot be pickled
        with pytest.raises(CheckpointError):
            manager.save(key(1))

    def test_available_checkpoints_filters_by_file_and_prefix(self, manager, db):
        manager.register({"state": {"w": 1}})
        manager.save(key(1))
        manager.save(key(4))
        ObjectRepository(db).put  # unrelated access; no extra rows
        listed = manager.available_checkpoints("p", "t1", "train.py")
        assert listed == [(1, "epoch"), (4, "epoch")]
        assert manager.available_checkpoints("p", "t1", "other.py") == []
