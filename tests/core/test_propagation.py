"""Tests for cross-version log-statement propagation."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.core.propagation import (
    find_flor_statements,
    propagate_by_line_number,
    propagate_statements,
)
from repro.errors import PropagationError

OLD_SOURCE = textwrap.dedent(
    """
    lr = flor.arg("lr", 0.01)
    state = {"w": 0.0}
    with flor.checkpointing(state=state):
        for epoch in flor.loop("epoch", range(5)):
            state["w"] += lr
            flor.log("loss", 1.0 / (1.0 + state["w"]))
    """
).strip()

NEW_SOURCE = textwrap.dedent(
    """
    lr = flor.arg("lr", 0.01)
    state = {"w": 0.0}
    with flor.checkpointing(state=state):
        for epoch in flor.loop("epoch", range(5)):
            state["w"] += lr
            flor.log("loss", 1.0 / (1.0 + state["w"]))
            flor.log("weight", state["w"])
    """
).strip()

REFACTORED_OLD = textwrap.dedent(
    """
    # An earlier revision: different hyperparameters, extra helper, shifted lines.
    def helper(value):
        return value * 2

    lr = flor.arg("lr", 0.05)
    state = {"w": 0.0}
    with flor.checkpointing(state=state):
        for epoch in flor.loop("epoch", range(3)):
            state["w"] += lr
            flor.log("loss", 1.0 / (1.0 + state["w"]))
    """
).strip()


class TestFindFlorStatements:
    def test_finds_log_and_arg_calls(self):
        statements = find_flor_statements(NEW_SOURCE)
        names = [(s.call_name, s.logged_name) for s in statements]
        assert ("arg", "lr") in names
        assert ("log", "loss") in names
        assert ("log", "weight") in names

    def test_assignment_form_is_detected(self):
        statements = find_flor_statements("x = flor.log('acc', value)\n")
        assert statements[0].logged_name == "acc"

    def test_non_flor_calls_ignored(self):
        statements = find_flor_statements("print('hi')\nother.log('x', 1)\n")
        assert statements == []

    def test_custom_module_alias(self):
        statements = find_flor_statements("fl.log('x', 1)\n", module_alias="fl")
        assert len(statements) == 1

    def test_multiline_statement_captured_fully(self):
        source = "flor.log(\n    'acc',\n    compute(),\n)\n"
        statement = find_flor_statements(source)[0]
        assert statement.line_count == 4
        assert "compute()" in statement.text

    def test_syntax_error_raises(self):
        with pytest.raises(PropagationError):
            find_flor_statements("def broken(:\n")


class TestPropagation:
    def test_injects_new_statement_into_identical_old_version(self):
        result = propagate_statements(OLD_SOURCE, NEW_SOURCE)
        assert result.injected_count == 1
        assert 'flor.log("weight", state["w"])' in result.patched_source
        ast.parse(result.patched_source)

    def test_injection_lands_inside_the_loop_body(self):
        result = propagate_statements(OLD_SOURCE, NEW_SOURCE)
        lines = result.patched_source.splitlines()
        weight_line = next(line for line in lines if "weight" in line)
        loss_line = next(line for line in lines if '"loss"' in line)
        assert len(weight_line) - len(weight_line.lstrip()) == len(loss_line) - len(loss_line.lstrip())
        assert lines.index(weight_line) == lines.index(loss_line) + 1

    def test_statements_already_present_are_not_duplicated(self):
        result = propagate_statements(NEW_SOURCE, NEW_SOURCE)
        assert result.injected_count == 0
        assert len(result.already_present) >= 3
        assert result.patched_source == NEW_SOURCE

    def test_propagation_is_idempotent(self):
        first = propagate_statements(OLD_SOURCE, NEW_SOURCE)
        second = propagate_statements(first.patched_source, NEW_SOURCE)
        assert second.injected_count == 0
        assert second.patched_source.count('"weight"') == 1

    def test_propagation_survives_refactored_old_version(self):
        result = propagate_statements(REFACTORED_OLD, NEW_SOURCE)
        assert result.injected_count == 1
        patched = result.patched_source
        ast.parse(patched)
        lines = patched.splitlines()
        weight_idx = next(i for i, line in enumerate(lines) if "weight" in line)
        loss_idx = next(i for i, line in enumerate(lines) if '"loss"' in line)
        assert weight_idx == loss_idx + 1  # still right after the loss log, inside the loop

    def test_statement_filter_restricts_injection(self):
        result = propagate_statements(
            OLD_SOURCE,
            NEW_SOURCE,
            statement_filter=lambda s: s.logged_name == "nonexistent",
        )
        assert result.injected_count == 0
        assert result.patched_source == OLD_SOURCE

    def test_patched_source_always_parses(self):
        # Old version with a very different structure.
        old = "for epoch in flor.loop('epoch', range(2)):\n    pass\n"
        result = propagate_statements(old, NEW_SOURCE)
        ast.parse(result.patched_source)

    def test_result_flags(self):
        result = propagate_statements(OLD_SOURCE, NEW_SOURCE)
        assert result.changed
        unchanged = propagate_statements(NEW_SOURCE, NEW_SOURCE)
        assert not unchanged.changed


class TestLineNumberBaseline:
    def test_baseline_works_when_versions_are_line_aligned(self):
        result = propagate_by_line_number(OLD_SOURCE, NEW_SOURCE)
        assert result.injected_count == 1
        ast.parse(result.patched_source)

    def test_baseline_misplaces_under_refactoring(self):
        """The ablation's point: absolute line numbers break when code shifts."""
        anchored = propagate_statements(REFACTORED_OLD, NEW_SOURCE)
        baseline = propagate_by_line_number(REFACTORED_OLD, NEW_SOURCE)

        def weight_is_adjacent_to_loss(source: str) -> bool:
            lines = source.splitlines()
            weight = [i for i, line in enumerate(lines) if "weight" in line]
            loss = [i for i, line in enumerate(lines) if '"loss"' in line]
            return bool(weight) and bool(loss) and abs(weight[0] - loss[0]) == 1

        assert weight_is_adjacent_to_loss(anchored.patched_source)
        assert not weight_is_adjacent_to_loss(baseline.patched_source)


class TestDroppedStatementReporting:
    """The propagation plan must *report* statements it cannot place safely —
    never silently mangle the patched source (the `--dry-run` contract)."""

    def test_unanchorable_statement_is_reported_as_skipped(self):
        # Nothing in the new source matches the old source, so the new
        # statement has no anchor above or below it.
        old = 'x = 1\ny = 2'
        new = 'flor.log("a", 1)'
        result = propagate_statements(old, new)
        assert result.injected == []
        assert len(result.skipped) == 1
        assert result.skipped[0].logged_name == "a"
        assert result.patched_source == old  # untouched
        ast.parse(result.patched_source)

    def test_parse_breaking_insertion_is_dropped_and_reported(self):
        # The statement's only anchor is *below* it at a deeper context: the
        # planned insertion produces an indented line at the top of the old
        # file, which cannot parse, so the incremental fallback drops it.
        old = "x = 1\ny = 2"
        new = 'if x:\n    flor.log("a", 1)\nx = 1\ny = 2'
        result = propagate_statements(old, new)
        assert result.injected == []
        assert [s.logged_name for s in result.skipped] == ["a"]
        assert result.placements == []
        assert result.patched_source.strip() == old
        ast.parse(result.patched_source)

    def test_mixed_outcome_reports_each_bucket_once(self):
        old = OLD_SOURCE
        new = NEW_SOURCE + '\nif False:\n    flor.log("ghost", 1)'
        # "weight" injects cleanly; "ghost" only anchors under an `if` that
        # does not exist in the old version.
        result = propagate_statements(old, new)
        injected_names = {s.logged_name for s in result.injected}
        skipped_names = {s.logged_name for s in result.skipped}
        assert "weight" in injected_names
        assert result.placements and result.placements[0][0].logged_name == "weight"
        assert injected_names.isdisjoint(skipped_names)
        ast.parse(result.patched_source)

    def test_baseline_reports_parse_breaking_absolute_positions(self):
        old = "x = 1\ny = 2"
        new = 'if x:\n    flor.log("a", 1)\nx = 1\ny = 2'
        result = propagate_by_line_number(old, new)
        assert [s.logged_name for s in result.skipped] == ["a"]
        assert result.patched_source == old
        ast.parse(result.patched_source)

    def test_placements_anchor_injected_statements_to_old_lines(self):
        result = propagate_statements(OLD_SOURCE, NEW_SOURCE)
        assert result.injected_count == 1
        assert len(result.placements) == 1
        statement, index = result.placements[0]
        assert statement.logged_name == "weight"
        # Inserted right after the loss line of the old source.
        loss_line = OLD_SOURCE.splitlines().index(
            '        flor.log("loss", 1.0 / (1.0 + state["w"]))'
        )
        assert index == loss_line + 1
