"""Tests for multiversion hindsight logging (the backfill engine)."""

from __future__ import annotations

import pytest

from repro import HindsightEngine, ReplayPlan
from repro.workloads import VersionedScriptWorkload


@pytest.fixture()
def versioned(free_session):
    """Three committed versions of train.py, none of which log 'weight'."""
    workload = VersionedScriptWorkload(versions=3, epochs=4, steps=2, refactor=True)
    vids = workload.record_all_versions(free_session)
    return free_session, workload, vids


class TestVersionInventory:
    def test_version_epochs_lists_all_committed_versions(self, versioned):
        session, workload, vids = versioned
        engine = HindsightEngine(session)
        epochs = engine.version_epochs("train.py")
        assert [vid for vid, _ts in epochs] == vids
        assert len({ts for _vid, ts in epochs}) == len(vids)

    def test_historical_source_matches_recorded_version(self, versioned):
        session, workload, vids = versioned
        engine = HindsightEngine(session)
        source = engine.historical_source(vids[0], "train.py")
        assert 'flor.arg("lr", 0.01)' in source  # version 0 learning rate
        assert "weight" not in source


class TestBackfill:
    def test_backfill_fills_missing_column_across_all_versions(self, versioned):
        session, workload, vids = versioned
        before = session.dataframe("loss", "weight")
        assert all(row.get("weight") is None for row in before.to_records())

        engine = HindsightEngine(session)
        report = engine.backfill("train.py", new_source=workload.hindsight_source())
        assert report.versions_replayed == len(vids)
        assert report.new_records == len(vids) * workload.epochs * workload.steps

        after = session.dataframe("loss", "weight")
        assert len(after) == len(before)
        assert not any(row.get("weight") is None for row in after.to_records())

    def test_backfilled_values_reflect_each_versions_hyperparameters(self, versioned):
        session, workload, vids = versioned
        engine = HindsightEngine(session)
        engine.backfill("train.py", new_source=workload.hindsight_source())
        frame = session.dataframe("weight")
        # Learning rates were 0.01 * (version + 1); final weights must therefore differ per run.
        finals = {}
        for row in frame.to_records():
            finals.setdefault(row["tstamp"], 0.0)
            finals[row["tstamp"]] = max(finals[row["tstamp"]], row["weight"])
        assert len(set(round(v, 9) for v in finals.values())) == len(vids)

    def test_backfill_reports_injected_statement_counts(self, versioned):
        session, workload, _vids = versioned
        engine = HindsightEngine(session)
        report = engine.backfill("train.py", new_source=workload.hindsight_source())
        assert all(v.injected_statements == 1 for v in report.versions)
        assert all(v.ok for v in report.versions)

    def test_backfill_is_idempotent(self, versioned):
        session, workload, _vids = versioned
        engine = HindsightEngine(session)
        first = engine.backfill("train.py", new_source=workload.hindsight_source())
        second = engine.backfill("train.py", new_source=workload.hindsight_source())
        assert first.new_records > 0
        assert second.new_records == 0

    def test_backfill_restricted_to_selected_versions(self, versioned):
        session, workload, vids = versioned
        engine = HindsightEngine(session)
        report = engine.backfill(
            "train.py", new_source=workload.hindsight_source(), versions=[vids[-1]]
        )
        assert len(report.versions) == 1
        assert report.versions[0].vid == vids[-1]

    def test_backfill_with_replay_plan_limits_execution(self, versioned):
        session, workload, _vids = versioned
        engine = HindsightEngine(session)
        report = engine.backfill(
            "train.py",
            new_source=workload.hindsight_source(),
            plan=ReplayPlan.only(epoch=[workload.epochs - 1]),
        )
        assert report.iterations_skipped > 0
        # At minimum the target epoch's step-level records materialize per
        # version; epochs re-executed to bridge from the nearest checkpoint may
        # add a few more, but the full cross-product must not be re-done.
        full = len(report.versions) * workload.epochs * workload.steps
        assert len(report.versions) * workload.steps <= report.new_records < full

    def test_backfill_uses_working_copy_when_no_source_given(self, versioned):
        session, workload, _vids = versioned
        # The working copy on disk is the last version; add the new statement to it.
        (session.config.root / "train.py").write_text(workload.hindsight_source())
        engine = HindsightEngine(session)
        report = engine.backfill("train.py")
        assert report.new_records > 0

    def test_backfill_missing_file_raises(self, versioned):
        from repro.errors import ReplayError

        session, _workload, _vids = versioned
        engine = HindsightEngine(session)
        with pytest.raises(ReplayError):
            engine.backfill("never_committed.py")

    def test_backfill_unknown_parallelism_raises(self, versioned):
        from repro.errors import ReplayError

        session, workload, _vids = versioned
        engine = HindsightEngine(session)
        with pytest.raises(ReplayError):
            engine.backfill("train.py", new_source=workload.hindsight_source(), parallelism="gpu")


class TestParallelBackfill:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_parallel_modes_produce_same_results_as_serial(self, make_session, mode):
        workload = VersionedScriptWorkload(versions=3, epochs=3, steps=2)

        serial_session = make_session("serial")
        workload.record_all_versions(serial_session)
        HindsightEngine(serial_session).backfill(
            "train.py", new_source=workload.hindsight_source(), parallelism="serial"
        )
        serial_weights = sorted(
            round(row["weight"], 9) for row in serial_session.dataframe("weight").to_records()
        )

        parallel_session = make_session(mode)
        workload.record_all_versions(parallel_session)
        report = HindsightEngine(parallel_session).backfill(
            "train.py", new_source=workload.hindsight_source(), parallelism=mode, max_workers=2
        )
        parallel_weights = sorted(
            round(row["weight"], 9) for row in parallel_session.dataframe("weight").to_records()
        )
        assert report.versions_replayed == 3
        assert parallel_weights == serial_weights

    def test_report_summary_fields(self, versioned):
        session, workload, _vids = versioned
        report = HindsightEngine(session).backfill("train.py", new_source=workload.hindsight_source())
        summary = report.summary()
        assert summary["versions"] == 3
        assert summary["new_records"] == report.new_records
        assert summary["wall_seconds"] >= 0
