"""Round-trip and edge-case tests for :class:`repro.core.replay.ReplayPlan`.

Plans cross process boundaries (the process-pool replay worker) and now also
survive in job payloads (``repro.jobs``), so ``to_dict``/``from_dict`` must
round-trip faithfully — including the degenerate shapes: ``None``, empty
mappings, empty iteration sets and negative indices.
"""

from __future__ import annotations

import pytest

from repro.core.replay import ReplayPlan


class TestFromDict:
    def test_from_dict_none_is_the_total_plan(self):
        plan = ReplayPlan.from_dict(None)
        assert plan.is_total()
        assert plan.selects("epoch", 0)
        assert plan.selects("anything", 10_000)

    def test_from_dict_empty_mapping_is_the_total_plan(self):
        assert ReplayPlan.from_dict({}).is_total()

    def test_from_dict_coerces_iterations_to_ints(self):
        plan = ReplayPlan.from_dict({"epoch": ["3", 4.0]})
        assert plan.selects("epoch", 3)
        assert plan.selects("epoch", 4)
        assert not plan.selects("epoch", 5)

    def test_from_dict_with_empty_iteration_set_selects_nothing_for_that_loop(self):
        plan = ReplayPlan.from_dict({"epoch": []})
        assert not plan.is_total()
        assert not plan.selects("epoch", 0)
        # Loops the plan does not mention still execute fully.
        assert plan.selects("step", 0)

    def test_from_dict_accepts_negative_iterations(self):
        plan = ReplayPlan.from_dict({"epoch": [-1]})
        assert plan.selects("epoch", -1)
        assert not plan.selects("epoch", 0)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "selections",
        [
            {},
            {"epoch": [0]},
            {"epoch": [7, 3, 5]},
            {"epoch": [], "step": [0]},
            {"epoch": [-2, -1, 0]},
        ],
    )
    def test_to_dict_from_dict_round_trips(self, selections):
        plan = ReplayPlan({name: frozenset(v) for name, v in selections.items()})
        restored = ReplayPlan.from_dict(plan.to_dict())
        assert restored == plan

    def test_to_dict_sorts_iterations(self):
        plan = ReplayPlan.only(epoch=[9, 1, 5])
        assert plan.to_dict() == {"epoch": [1, 5, 9]}

    def test_round_trip_of_the_total_plan_stays_total(self):
        assert ReplayPlan.from_dict(ReplayPlan.all().to_dict()).is_total()


class TestOnlyComposition:
    def test_only_composes_across_nesting_levels(self):
        plan = ReplayPlan.only(epoch=range(8, 10), step=[0])
        assert plan.selects("epoch", 8)
        assert plan.selects("epoch", 9)
        assert not plan.selects("epoch", 7)
        assert plan.selects("step", 0)
        assert not plan.selects("step", 1)

    def test_only_accepts_any_int_iterable(self):
        plan = ReplayPlan.only(epoch=(i for i in (2, 4)))
        assert plan.selects("epoch", 2) and plan.selects("epoch", 4)
        assert not plan.selects("epoch", 3)

    def test_only_with_no_loops_is_total(self):
        assert ReplayPlan.only().is_total()

    def test_plans_are_immutable_value_objects(self):
        plan = ReplayPlan.only(epoch=[1])
        with pytest.raises(AttributeError):
            plan.selections = {}
        assert plan == ReplayPlan.only(epoch=[1])
