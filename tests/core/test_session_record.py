"""Tests for the record-mode session: the paper's core API surface."""

from __future__ import annotations

import pytest

from repro import ProjectConfig, Session, active_session, flor
from repro.core.session import get_active_session
from repro.errors import RecordingError


class TestLog:
    def test_log_returns_value_unchanged(self, session):
        assert session.log("acc", 0.9) == 0.9

    def test_log_buffers_until_flush(self, session):
        session.log("acc", 0.9)
        assert session.pending_records == 1
        assert session.logs.count() == 0
        session.flush()
        assert session.logs.count() == 1
        assert session.pending_records == 0

    def test_log_outside_loop_uses_top_level_ctx(self, session):
        session.log("lr", 0.01)
        session.flush()
        assert session.logs.all(session.projid)[0].ctx_id == 0

    def test_log_records_carry_projid_tstamp_filename(self, session):
        session.log("acc", 1)
        session.flush()
        record = session.logs.all(session.projid)[0]
        assert record.projid == "testproj"
        assert record.filename == "train.py"
        assert record.tstamp == session.tstamp

    def test_complex_values_roundtrip_through_dataframe(self, session):
        session.log("headings", ["Intro", "Methods"])
        frame = session.dataframe("headings")
        assert frame.row(0)["headings"] == ["Intro", "Methods"]


class TestArg:
    def test_arg_uses_default_when_unset(self, session):
        assert session.arg("epochs", 5) == 5

    def test_arg_prefers_cli_args_mapping(self, project):
        with Session(project, default_filename="train.py", cli_args={"epochs": "9"}) as session:
            assert session.arg("epochs", 5) == 9  # coerced to the default's type

    def test_arg_reads_sys_argv(self, project, monkeypatch):
        monkeypatch.setattr("sys.argv", ["train.py", "--lr=0.5", "batch=16"])
        with Session(project, default_filename="train.py") as session:
            assert session.arg("lr", 0.1) == 0.5
            assert session.arg("batch", 32) == 16

    def test_arg_is_logged(self, session):
        session.arg("hidden", 500)
        frame = session.dataframe("hidden")
        assert frame.row(0)["hidden"] == 500

    def test_arg_bool_coercion(self, project):
        with Session(project, default_filename="t.py", cli_args={"flag": "true"}) as session:
            assert session.arg("flag", False) is True

    def test_arg_without_default(self, project):
        with Session(project, default_filename="t.py", cli_args={"name": "resnet"}) as session:
            assert session.arg("name") == "resnet"


class TestLoop:
    def test_loop_yields_original_values(self, session):
        assert list(session.loop("epoch", range(3))) == [0, 1, 2]
        assert list(session.loop("doc", ["a.pdf", "b.pdf"])) == ["a.pdf", "b.pdf"]

    def test_loop_records_one_row_per_iteration(self, session):
        list(session.loop("epoch", range(4)))
        session.flush()
        records = session.loops.all(session.projid)
        assert len(records) == 4
        assert [r.loop_iteration for r in records] == [0, 1, 2, 3]
        assert all(r.loop_name == "epoch" for r in records)
        assert all(r.parent_ctx_id == 0 for r in records)

    def test_nested_loops_link_parent_contexts(self, session):
        for _epoch in session.loop("epoch", range(2)):
            for _step in session.loop("step", range(2)):
                session.log("loss", 1.0)
        session.flush()
        loops = {r.ctx_id: r for r in session.loops.all(session.projid)}
        steps = [r for r in loops.values() if r.loop_name == "step"]
        assert len(steps) == 4
        assert all(loops[s.parent_ctx_id].loop_name == "epoch" for s in steps)

    def test_logs_inside_loop_carry_iteration_ctx(self, session):
        for epoch in session.loop("epoch", range(2)):
            session.log("acc", 0.5 + epoch)
        session.flush()
        logs = session.logs.all(session.projid)
        loop_rows = {r.ctx_id: r for r in session.loops.all(session.projid)}
        assert [loop_rows[r.ctx_id].loop_iteration for r in logs] == [0, 1]

    def test_loop_over_empty_iterable(self, session):
        assert list(session.loop("epoch", [])) == []
        session.flush()
        assert session.loops.count() == 0

    def test_ctx_ids_unique_within_run(self, session):
        for _ in session.loop("a", range(3)):
            pass
        for _ in session.loop("b", range(3)):
            pass
        session.flush()
        ctx_ids = [r.ctx_id for r in session.loops.all(session.projid)]
        assert len(set(ctx_ids)) == len(ctx_ids)


class TestIteration:
    def test_iteration_records_single_loop_row(self, session):
        with session.iteration("document", None, "report.pdf"):
            session.log("page_color", 2)
        session.flush()
        loops = session.loops.all(session.projid)
        assert len(loops) == 1
        assert loops[0].loop_name == "document"
        assert loops[0].iteration_value == "report.pdf"
        assert loops[0].loop_iteration == 0

    def test_iteration_auto_increments_index(self, session):
        with session.iteration("document", None, "a.pdf"):
            pass
        with session.iteration("document", None, "b.pdf"):
            pass
        session.flush()
        iterations = [r.loop_iteration for r in session.loops.all(session.projid)]
        assert iterations == [0, 1]

    def test_iteration_with_explicit_index(self, session):
        with session.iteration("document", 7, "x.pdf"):
            pass
        session.flush()
        assert session.loops.all(session.projid)[0].loop_iteration == 7

    def test_nested_iteration_and_loop(self, session):
        with session.iteration("document", None, "a.pdf"):
            for _page in session.loop("page", range(3)):
                session.log("page_color", 0)
        session.flush()
        pages = [r for r in session.loops.all(session.projid) if r.loop_name == "page"]
        documents = [r for r in session.loops.all(session.projid) if r.loop_name == "document"]
        assert len(pages) == 3
        assert all(p.parent_ctx_id == documents[0].ctx_id for p in pages)


class TestCommit:
    def test_commit_flushes_and_advances_timestamp(self, session):
        session.log("acc", 1.0)
        before = session.tstamp
        vid = session.commit("first run")
        assert session.logs.count() == 1
        assert session.tstamp > before
        assert vid is not None

    def test_commit_writes_ts2vid_epoch(self, session):
        session.log("acc", 1.0)
        first_tstamp = session.tstamp
        vid = session.commit("run", root_target="train")
        epochs = session.ts2vid.all(session.projid)
        assert len(epochs) == 1
        assert epochs[0].ts_start == first_tstamp
        assert epochs[0].vid == vid
        assert epochs[0].root_target == "train"

    def test_records_after_commit_use_new_timestamp(self, session):
        session.log("acc", 1.0)
        session.commit()
        session.log("acc", 2.0)
        session.flush()
        tstamps = {r.tstamp for r in session.logs.all(session.projid)}
        assert len(tstamps) == 2

    def test_commit_snapshots_tracked_files(self, session, project):
        (project.root / "train.py").write_text("print('hello')\n")
        session.track("train.py")
        vid = session.commit("with file")
        assert "hello" in session.repository.read_file(vid, "train.py")

    def test_track_rejects_paths_outside_project(self, session, tmp_path):
        outside = tmp_path.parent / "elsewhere.py"
        with pytest.raises(RecordingError):
            session.track(outside if outside.is_absolute() else outside.resolve())


class TestActiveSession:
    def test_facade_routes_to_activated_session(self, session):
        with active_session(session):
            flor.log("acc", 0.25)
            assert flor.pending_records() == 1
            assert get_active_session() is session

    def test_nested_activation_restores_previous(self, session, make_session):
        other = make_session("other", default_filename="x.py")
        with active_session(session):
            with active_session(other):
                assert get_active_session() is other
            assert get_active_session() is session

    def test_no_active_session_raises_when_default_disabled(self):
        with pytest.raises(RecordingError):
            get_active_session(create_default=False)

    def test_facade_dataframe_and_utils_latest(self, session):
        with active_session(session):
            for epoch in flor.loop("epoch", range(2)):
                flor.log("acc", epoch * 0.1)
            flor.commit()
            for epoch in flor.loop("epoch", range(2)):
                flor.log("acc", 0.5 + epoch * 0.1)
            flor.commit()
            frame = flor.dataframe("acc")
            assert len(frame) == 4
            newest = flor.utils.latest(frame)
            assert len(newest) == 2
            assert min(newest["acc"].to_list()) >= 0.5

    def test_invalid_session_mode_rejected(self, project):
        with pytest.raises(RecordingError):
            Session(project, mode="weird")
