"""Router streaming tests: SSE relay, header forwarding, telemetry fan-in.

Same harness as test_router.py — a never-started supervisor fronting tiny
in-thread backends on real sockets — but the backends here serve
*streaming* routes, so these tests cover the full relay path: client →
router ``_proxy_stream`` → ``HttpClient.stream`` → backend chunked
response, and back.
"""

from __future__ import annotations

import threading

import pytest

from repro.fleet import FleetRouter, FleetSupervisor
from repro.fleet.transport import HttpClient
from repro.service.server import make_server
from repro.webapp.framework import (
    JsonResponse,
    Request,
    Response,
    StreamingResponse,
    TestClient,
    sse_event,
)


class _StreamApp:
    """Backend serving tail/telemetry shapes, tagged with its own id."""

    def __init__(self, backend_id: str):
        self.backend_id = backend_id

    def handle(self, request: Request) -> Response:
        segments = [s for s in request.path.split("/") if s]
        if segments[-1:] == ["tail"]:
            if segments[0] == "jobs" and segments[1] == "404":
                return JsonResponse({"error": "no job 404"}, status=404)
            if request.query.get("refuse"):
                return JsonResponse(
                    {"error": "too many subscribers"},
                    status=503,
                    headers={"Retry-After": "1.0"},
                )
            last_id = request.headers.get("Last-Event-ID", "")
            backend = self.backend_id

            def generate():
                yield sse_event({"backend": backend, "last_id": last_id}, event="hello", id=1)
                for i in range(2, 5):
                    yield sse_event({"seq": i}, event="log", id=i)
                if request.query.get("explode"):
                    # A worker dying mid-stream surfaces to the router as a
                    # transport error on the relay read.
                    raise RuntimeError("backend crashed mid-stream")

            return StreamingResponse(generate())
        if request.path == "/service/telemetry":
            return JsonResponse(
                {
                    "uptime_seconds": 5.0,
                    "counters": {"flush.rows": 10.0, f"only.{self.backend_id}": 1.0},
                    "gauges": {"flush.pending_rows": 2.0},
                    "histograms": {},
                    "tail": {
                        "streams": 1,
                        "subscribers": 2,
                        "subscribed_total": 3,
                        "evicted_total": 0,
                    },
                    "jobs": {"queued": 1},
                    "open_shards": 1,
                }
            )
        return JsonResponse({"backend": self.backend_id, "path": request.path})


@pytest.fixture
def fleet():
    """Two streaming backends registered as w0/w1 behind a real router."""

    class _FakeProcess:
        pid = 1000

        def poll(self):
            return None

    servers, threads = [], []
    supervisor = FleetSupervisor(lambda wid, url: ["unused"], workers=2)
    for worker_id in ("w0", "w1"):
        server = make_server(_StreamApp(worker_id))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
        host, port = server.server_address[:2]
        supervisor._handles[worker_id].process = _FakeProcess()
        supervisor.on_register(worker_id, f"http://{host}:{port}", pid=1000)
    router = FleetRouter(supervisor, failover_timeout=0.5)
    try:
        yield supervisor, router, TestClient(router)
    finally:
        router.close()
        for server in servers:
            server.shutdown()
            server.server_close()
        for thread in threads:
            thread.join(timeout=2)


class TestTailRelay:
    def test_project_tail_streams_from_the_ring_owner(self, fleet):
        supervisor, _, client = fleet
        events = client.sse("/projects/alpha/tail").collect(timeout=10)
        assert len(events) == 4
        hello = events[0].json()
        assert hello["backend"] == supervisor.route("alpha")
        assert [e.id for e in events] == ["1", "2", "3", "4"]

    def test_last_event_id_header_is_forwarded_upstream(self, fleet):
        _, _, client = fleet
        events = client.sse(
            "/projects/alpha/tail", headers={"Last-Event-ID": "37"}
        ).collect(timeout=10)
        assert events[0].json()["last_id"] == "37"

    def test_job_tail_relays_through_any_worker(self, fleet):
        _, _, client = fleet
        events = client.sse("/jobs/7/tail").collect(timeout=10)
        assert len(events) == 4
        assert events[0].json()["backend"] in ("w0", "w1")

    def test_upstream_refusal_is_relayed_buffered_with_headers(self, fleet):
        _, _, client = fleet
        stream = client.sse("/projects/alpha/tail?refuse=1")
        assert stream.status == 503
        assert stream.headers.get("Retry-After") == "1.0"

    def test_unknown_job_404_passes_through(self, fleet):
        _, _, client = fleet
        assert client.sse("/jobs/404/tail").status == 404

    def test_backend_death_mid_stream_ends_the_relay_cleanly(self, fleet):
        """The subscriber sees a truncated-but-clean stream (EOF), keeps
        its cursor, and reconnects; the router must not blow up or retry
        mid-stream (which could re-frame rows the client already has)."""
        _, _, client = fleet
        events = client.sse("/projects/alpha/tail?explode=1").collect(timeout=10)
        # Everything yielded before the crash was relayed; nothing raised.
        assert [e.id for e in events] == ["1", "2", "3", "4"]

    def test_all_workers_down_is_a_503_with_retry_after(self, fleet):
        supervisor, router, client = fleet
        for worker_id in ("w0", "w1"):
            supervisor.note_unreachable(worker_id)
            supervisor._handles[worker_id].url = "http://127.0.0.1:1"  # nobody listens
        stream = client.sse("/projects/alpha/tail")
        assert stream.status == 503
        assert "Retry-After" in stream.headers


class TestTelemetryFanIn:
    def test_counters_and_tail_sum_across_workers(self, fleet):
        _, _, client = fleet
        body = client.get("/service/telemetry").json()
        assert body["role"] == "router"
        assert body["counters"]["flush.rows"] == 20.0  # 10 from each worker
        assert body["counters"]["only.w0"] == 1.0
        assert body["counters"]["only.w1"] == 1.0
        assert body["gauges"]["flush.pending_rows"] == 4.0
        assert body["tail"] == {
            "streams": 2,
            "subscribers": 4,
            "subscribed_total": 6,
            "evicted_total": 0,
        }
        assert body["jobs"] == {"queued": 1}  # shared store: first answer wins
        assert set(body["workers"]) == {"w0", "w1"}

    def test_dead_worker_shows_an_error_block_not_a_failure(self, fleet):
        supervisor, _, client = fleet
        supervisor._handles["w1"].url = "http://127.0.0.1:1"
        body = client.get("/service/telemetry").json()
        assert body["counters"]["flush.rows"] == 10.0  # only w0 contributes
        assert "error" in body["workers"]["w1"]

    def test_stream_mode_emits_aggregated_snapshots(self, fleet):
        _, _, client = fleet
        events = client.sse("/service/telemetry?stream=1&interval=0.05").collect(
            max_events=2, timeout=10
        )
        assert [e.event for e in events] == ["telemetry", "telemetry"]
        assert events[0].json()["counters"]["flush.rows"] == 20.0

    def test_bad_interval_is_a_400(self, fleet):
        _, _, client = fleet
        assert client.get("/service/telemetry?stream=1&interval=x").status == 400


class TestHttpClientStream:
    def test_stream_reads_chunks_without_buffering_and_closes(self, fleet):
        supervisor, _, _ = fleet
        url = supervisor.url_for("w0")
        with HttpClient(url) as client:
            stream = client.stream("/projects/alpha/tail")
            assert stream.ok
            assert "text/event-stream" in stream.headers.get("Content-Type", "")
            events = stream.sse().collect(timeout=10)
            assert len(events) == 4

    def test_non_2xx_stream_can_be_drained_buffered(self, fleet):
        supervisor, _, _ = fleet
        url = supervisor.url_for("w0")
        with HttpClient(url) as client:
            stream = client.stream("/projects/alpha/tail?refuse=1")
            assert stream.status == 503
            assert b"too many" in stream.read()

    def test_connect_failure_raises_transport_error(self):
        from repro.errors import TransportError

        with HttpClient("http://127.0.0.1:1", timeout=0.5) as client:
            with pytest.raises(TransportError):
                client.stream("/projects/alpha/tail")
