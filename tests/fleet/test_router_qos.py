"""Router-level QoS: one admission point fronting the whole fleet.

Same harness as ``test_router.py`` — in-thread echo backends behind a real
:class:`FleetRouter` — but with a policy store and admission controller
attached.  The properties under test: admission is decided *before* the
proxy hop (a throttled request never reaches a worker), the policy admin
surface lives on the router's control plane, and every denial or outage
answer carries a ``Retry-After``.
"""

from __future__ import annotations

import threading

import pytest

from repro.fleet import FleetRouter, FleetSupervisor
from repro.qos import AdmissionController, PolicyRule, PolicyStore
from repro.service.server import make_server
from repro.webapp.framework import JsonResponse, Request, Response, TestClient


class _CountingEchoApp:
    """Echo backend that counts the requests that actually reached it."""

    def __init__(self, backend_id: str):
        self.backend_id = backend_id
        self.hits = 0

    def handle(self, request: Request) -> Response:
        self.hits += 1
        if request.path == "/service/stats":
            return JsonResponse({"backend": self.backend_id, "open_shards": []})
        return JsonResponse({"backend": self.backend_id, "path": request.path})


class _FakeProcess:
    def __init__(self, pid: int):
        self.pid = pid

    def poll(self):
        return None


@pytest.fixture
def qos_fleet(tmp_path):
    """Two counting echo backends behind a QoS-enforcing router."""
    servers, backends = [], {}
    supervisor = FleetSupervisor(lambda wid, url: ["unused"], workers=2)
    for worker_id in ("w0", "w1"):
        app = _CountingEchoApp(worker_id)
        server = make_server(app)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        backends[worker_id] = app
        host, port = server.server_address[:2]
        supervisor._handles[worker_id].process = _FakeProcess(1000)
        supervisor.on_register(worker_id, f"http://{host}:{port}", pid=1000)
    policies = PolicyStore.open(tmp_path)
    admission = AdmissionController(policies, refresh_interval=0.0)
    router = FleetRouter(
        supervisor, failover_timeout=0.5, policies=policies, admission=admission
    )
    try:
        yield supervisor, router, TestClient(router), backends
    finally:
        router.close()
        for server in servers:
            server.shutdown()


class TestRouterAdmission:
    def test_throttled_request_never_reaches_a_worker(self, qos_fleet, tmp_path):
        supervisor, router, client, backends = qos_fleet
        router.policies.put(PolicyRule(selector="alpha", rate=1.0, burst=1.0))
        assert client.post("/projects/alpha/logs", json_body={"records": []}).status == 200
        owner = backends[supervisor.route("alpha")]
        hits_before = owner.hits
        denied = client.post("/projects/alpha/logs", json_body={"records": []})
        assert denied.status == 429
        assert float(denied.headers["Retry-After"]) > 0.0
        assert denied.json()["detail"]["reason"] == "rate"
        assert owner.hits == hits_before  # the worker never saw the request

    def test_byte_charge_uses_the_request_body_size(self, qos_fleet):
        _, router, client, _ = qos_fleet
        router.policies.put(PolicyRule(selector="alpha", byte_quota=32, window_seconds=30.0))
        big = client.post(
            "/projects/alpha/logs", json_body={"records": [{"pad": "x" * 64}]}
        )
        assert big.status == 413
        assert big.json()["detail"]["reason"] == "too_large"

    def test_stats_and_read_only_routes_are_never_admitted(self, qos_fleet):
        _, router, client, _ = qos_fleet
        router.policies.put(PolicyRule(selector="alpha", rate=1.0, burst=1.0))
        client.post("/projects/alpha/logs", json_body={"records": []})  # drain the bucket
        for _ in range(3):
            assert client.get("/projects/alpha/stats").status == 200

    def test_project_stats_carry_the_router_qos_view(self, qos_fleet):
        supervisor, router, client, _ = qos_fleet
        router.policies.put(PolicyRule(selector="alpha", rate=5.0))
        client.post("/projects/alpha/logs", json_body={"records": []})
        body = client.get("/projects/alpha/stats").json()
        assert body["worker"] == supervisor.route("alpha")
        assert body["qos"]["admitted"] == 1
        assert body["qos"]["policy"]["selector"] == "alpha"

    def test_aggregated_stats_carry_the_global_qos_view(self, qos_fleet):
        _, router, client, _ = qos_fleet
        router.policies.put(PolicyRule(selector="alpha", rate=1.0, burst=1.0))
        client.post("/projects/alpha/logs", json_body={"records": []})
        client.post("/projects/alpha/logs", json_body={"records": []})  # throttled
        qos = client.get("/service/stats").json()["qos"]
        assert qos["admitted"] == 1
        assert qos["throttled"] == 1
        assert "alpha" in qos["tenants"]

    def test_policy_admin_lives_on_the_router_control_plane(self, qos_fleet):
        _, _, client, backends = qos_fleet
        hits_before = sum(app.hits for app in backends.values())
        assert client.put("/service/policy/team_*", json_body={"rate": 5.0}).status == 200
        conflict = client.put("/service/policy/team_a", json_body={"rate": 50.0})
        assert conflict.status == 409
        assert conflict.json()["detail"]["code"] == "shadowed"
        table = client.get("/service/policy").json()
        assert table["enforcing"] is True
        assert [r["selector"] for r in table["rules"]] == ["team_*"]
        # Policy admin is control-plane work: no backend was consulted.
        assert sum(app.hits for app in backends.values()) == hits_before

    def test_plain_router_has_no_policy_surface(self):
        supervisor = FleetSupervisor(lambda wid, url: ["unused"], workers=1)
        router = FleetRouter(supervisor)
        try:
            client = TestClient(router)
            assert client.get("/service/policy").status == 404
        finally:
            router.close()


class TestFailoverBackoff:
    def test_unreachable_worker_503_carries_retry_after(self, qos_fleet):
        supervisor, _, client, _ = qos_fleet
        victim = supervisor.route("alpha")
        with supervisor._lock:
            handle = supervisor._handles[victim]
            handle.url = "http://127.0.0.1:1"
            handle.ready.clear()
        response = client.post("/projects/alpha/logs", json_body={"records": []})
        assert response.status == 503
        assert float(response.headers["Retry-After"]) > 0.0
