"""End-to-end fleet test: real supervisor, real workers, real sockets.

One ``repro serve --workers 2`` boot serves the whole module (the fixture
is the expensive part); each test observes a different face of it —
routing, ingest + primary reads through the proxy, stats aggregation,
worker self-identification, graceful shutdown.
"""

from __future__ import annotations

from urllib.parse import quote

import pytest

from repro.testing import FleetProcess


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    with FleetProcess(tmp_path_factory.mktemp("fleet") / "root", workers=2) as process:
        yield process
    # __exit__ hard-kills any survivor; the shutdown test terminates first.


@pytest.fixture(scope="module")
def placed(fleet):
    """Two projects the ring puts on different workers."""
    return fleet.projects_on_distinct_workers(2)


def _ingest(fleet, project: str, values: list[float]) -> None:
    response = fleet.post(
        f"/projects/{project}/logs",
        {
            "filename": "load.py",
            "records": [
                {"name": "metric", "value": value, "ctx_id": ctx}
                for ctx, value in enumerate(values)
            ],
        },
    )
    assert response["queued"] == len(values)


class TestFleetEndToEnd:
    def test_boot_registers_every_worker(self, fleet):
        health = fleet.get("/healthz")
        assert health["status"] == "ok"
        assert health["role"] == "router"
        assert health["fleet"]["registered"] == 2
        assert health["fleet"]["ring"] == ["w0", "w1"]
        views = fleet.worker_views()
        assert [view["id"] for view in views] == ["w0", "w1"]
        for view in views:
            assert view["alive"] and view["registered"]
            assert view["restarts"] == 0
            assert view["url"].startswith("http://127.0.0.1:")

    def test_resolution_is_stable_and_disjoint(self, fleet, placed):
        assert sorted(set(placed.values())) == ["w0", "w1"]
        for project, owner in placed.items():
            # Asking repeatedly, and via both routes, never changes the answer.
            assert fleet.resolve(project) == owner
            body = fleet.get(f"/fleet/resolve?project={project}")
            assert body["worker"] == owner
            assert body["url"].startswith("http://")

    def test_ingest_and_primary_read_through_the_proxy(self, fleet, placed):
        for offset, project in enumerate(placed):
            _ingest(fleet, project, [offset + 0.1, offset + 0.2])
        for offset, project in enumerate(placed):
            # primary=1 is the flush barrier; the sql read checks the rows.
            frame = fleet.get(f"/projects/{project}/dataframe?names=metric&primary=1")
            assert frame["rows"] >= 1
            query = quote("SELECT value FROM logs WHERE value_name = 'metric'")
            stored = fleet.get(f"/projects/{project}/sql?q={query}")
            values = {float(record["value"]) for record in stored["records"]}
            assert {offset + 0.1, offset + 0.2} <= values

    def test_project_stats_name_the_serving_worker(self, fleet, placed):
        for project, owner in placed.items():
            stats = fleet.get(f"/projects/{project}/stats")
            assert stats["worker"] == owner
            assert stats["project"] == project

    def test_worker_stats_identify_themselves(self, fleet, placed):
        """Satellite: a worker's /service/stats carries id, shard count,
        heartbeat age — visible through the fleet aggregation."""
        body = fleet.get("/service/stats")
        assert body["role"] == "router"
        assert set(body["workers"]) == {"w0", "w1"}
        open_shards = set(body["open_shards"])
        assert set(placed) <= open_shards
        for worker_id, stats in body["workers"].items():
            assert "error" not in stats
            ident = stats["worker"]
            assert ident["id"] == worker_id
            assert ident["pid"] > 0
            assert ident["owned_shards"] == len(stats["open_shards"])
            assert ident["heartbeat_age"] is not None
            assert ident["heartbeat_age"] < 30.0
        assert body["capacity"] > 0
        assert body["pool"]["misses"] >= len(placed)

    def test_jobs_routes_answer_through_any_worker(self, fleet):
        body = fleet.get("/jobs")
        assert body["jobs"] == []

    def test_sigterm_drains_and_exits_zero(self, fleet, placed):
        # Last test in the module by design: it takes the fleet down.
        _ingest(fleet, next(iter(placed)), [99.9])
        assert fleet.terminate() == 0
        assert not fleet.alive()
