"""HttpClient unit tests: keep-alive reuse, retry, and error mapping.

The backend counts TCP accepts, which is the observable that matters:
N requests from one thread over a keep-alive client must cost one
connection, not N.
"""

from __future__ import annotations

import socketserver
import threading

import pytest

from repro.errors import TransportError
from repro.fleet import HttpClient
from repro.service.server import make_server
from repro.webapp.framework import HttpError, JsonResponse, Request, WebApp


class _CountingServer:
    """A live WebApp server that counts accepted TCP connections."""

    def __init__(self):
        app = WebApp("counting")
        self.requests = 0

        @app.route("/ping", methods=("GET", "POST"))
        def ping(request: Request):
            self.requests += 1
            return JsonResponse({"pong": True, "body": request.get_json()})

        @app.route("/boom")
        def boom(_request: Request):
            raise HttpError(503, "backend unhappy")

        self.server = make_server(app)
        self.connections = 0
        original = self.server.get_request

        def counting_get_request():
            result = original()
            self.connections += 1
            return result

        self.server.get_request = counting_get_request
        self.thread = threading.Thread(target=self.server.serve_forever, daemon=True)
        self.thread.start()
        host, port = self.server.server_address[:2]
        self.url = f"http://{host}:{port}"

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=2)


@pytest.fixture
def backend():
    server = _CountingServer()
    try:
        yield server
    finally:
        server.close()


class TestKeepAlive:
    def test_many_requests_share_one_connection(self, backend):
        with HttpClient(backend.url) as client:
            for _ in range(10):
                assert client.get("/ping").ok
        assert backend.requests == 10
        assert backend.connections == 1

    def test_each_thread_gets_its_own_connection(self, backend):
        with HttpClient(backend.url) as client:
            done = threading.Barrier(3)

            def hammer():
                for _ in range(5):
                    client.get("/ping")
                done.wait()

            threads = [threading.Thread(target=hammer) for _ in range(2)]
            for thread in threads:
                thread.start()
            done.wait()
            for thread in threads:
                thread.join()
        assert backend.requests == 10
        # One socket per thread — not one per request, not one shared.
        assert backend.connections == 2

    def test_retries_once_when_the_keepalive_socket_went_stale(self):
        # This server claims HTTP/1.1 keep-alive but silently closes after
        # every response — exactly what a worker restart does to the
        # router's cached connection.  The client must retry each request
        # on a fresh socket instead of surfacing the stale-socket error.
        class _Liar(socketserver.BaseRequestHandler):
            def handle(self):
                self.request.recv(65536)
                body = b'{"pong": true}'
                self.request.sendall(
                    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                )

        server = socketserver.ThreadingTCPServer(("127.0.0.1", 0), _Liar)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with HttpClient(f"http://{host}:{port}") as client:
                for _ in range(3):
                    assert client.get("/ping").json() == {"pong": True}
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=2)


class TestErrors:
    def test_json_helpers_raise_on_http_errors(self, backend):
        with HttpClient(backend.url) as client:
            with pytest.raises(TransportError, match="503"):
                client.get_json("/boom")

    def test_unreachable_host_raises_transport_error(self):
        with HttpClient("http://127.0.0.1:1", timeout=0.5) as client:
            with pytest.raises(TransportError):
                client.get("/ping")

    def test_base_url_must_be_http(self):
        with pytest.raises(TransportError, match="http://host:port"):
            HttpClient("ftp://127.0.0.1:21")

    def test_post_json_round_trips_a_body(self, backend):
        with HttpClient(backend.url) as client:
            body = client.post_json("/ping", {"records": [1, 2, 3]})
        assert body == {"pong": True, "body": {"records": [1, 2, 3]}}
