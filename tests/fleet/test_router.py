"""FleetRouter unit tests: proxying, failover, and the control plane.

The router is exercised in isolation from real worker processes: a
:class:`FleetSupervisor` is constructed but never ``start()``-ed (so it
spawns nothing and accepts any registering pid), and the "workers" are
tiny in-thread echo servers bound to ephemeral ports.  That keeps every
routing decision observable — the echo body says which backend actually
served the request — without a single subprocess.
"""

from __future__ import annotations

import threading

import pytest

from repro.fleet import FleetRouter, FleetSupervisor
from repro.service.server import make_server
from repro.webapp.framework import JsonResponse, Request, Response, TestClient


class _EchoApp:
    """Answers every path with its own id — which backend served this?"""

    def __init__(self, backend_id: str):
        self.backend_id = backend_id

    def handle(self, request: Request) -> Response:
        if request.path == "/service/stats":
            return JsonResponse(
                {
                    "backend": self.backend_id,
                    "open_shards": [f"{self.backend_id}_shard"],
                    "capacity": 4,
                    "pool": {"hits": 1, "misses": 2},
                    "jobs": {"queued": 0},
                }
            )
        return JsonResponse(
            {
                "backend": self.backend_id,
                "method": request.method,
                "path": request.path,
                "query": request.query,
                "body": request.get_json(),
            }
        )


class _FakeProcess:
    """Stands in for the supervised Popen: always alive, fixed pid."""

    def __init__(self, pid: int):
        self.pid = pid

    def poll(self):
        return None


@pytest.fixture
def fleet():
    """Two echo backends registered as w0/w1 behind a real router."""
    servers, threads = [], []
    supervisor = FleetSupervisor(lambda wid, url: ["unused"], workers=2)
    for worker_id in ("w0", "w1"):
        server = make_server(_EchoApp(worker_id))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
        host, port = server.server_address[:2]
        supervisor._handles[worker_id].process = _FakeProcess(1000)
        supervisor.on_register(worker_id, f"http://{host}:{port}", pid=1000)
    router = FleetRouter(supervisor, failover_timeout=0.5)
    try:
        yield supervisor, router, TestClient(router)
    finally:
        router.close()
        for server in servers:
            server.shutdown()
            server.server_close()
        for thread in threads:
            thread.join(timeout=2)


class TestProxy:
    def test_project_requests_reach_the_ring_owner(self, fleet):
        supervisor, _, client = fleet
        for project in ("alpha", "beta", "gamma"):
            body = client.post(
                f"/projects/{project}/logs", json_body={"records": []}
            ).json()
            assert body["backend"] == supervisor.route(project)
            assert body["path"] == f"/projects/{project}/logs"
            assert body["body"] == {"records": []}

    def test_query_string_is_forwarded(self, fleet):
        _, _, client = fleet
        body = client.get("/projects/alpha/dataframe?names=metric&primary=1").json()
        assert body["query"] == {"names": "metric", "primary": "1"}

    def test_project_stats_are_annotated_with_the_worker_id(self, fleet):
        supervisor, _, client = fleet
        body = client.get("/projects/alpha/stats").json()
        assert body["worker"] == supervisor.route("alpha")
        assert body["backend"] == body["worker"]

    def test_invalid_project_names_are_rejected_at_the_router(self, fleet):
        _, _, client = fleet
        assert client.get("/projects/..%2Fetc/stats").status == 400

    def test_jobs_routes_round_robin_over_workers(self, fleet):
        _, _, client = fleet
        backends = {client.get("/jobs").json()["backend"] for _ in range(6)}
        assert backends == {"w0", "w1"}

    def test_unreachable_worker_times_out_to_503(self, fleet):
        supervisor, _, client = fleet
        victim = supervisor.route("alpha")
        # Simulate a crash: dead url, nothing will re-register it.
        with supervisor._lock:
            handle = supervisor._handles[victim]
            handle.url = "http://127.0.0.1:1"
            handle.ready.clear()
        response = client.post("/projects/alpha/logs", json_body={"records": []})
        assert response.status == 503
        assert victim in response.json()["error"]


class TestControlPlane:
    def test_healthz_reports_fleet_summary(self, fleet):
        _, _, client = fleet
        body = client.get("/healthz").json()
        assert body["role"] == "router"
        assert body["fleet"]["registered"] == 2
        assert body["fleet"]["ring"] == ["w0", "w1"]

    def test_register_unknown_worker_id_is_conflict(self, fleet):
        _, _, client = fleet
        response = client.post(
            "/fleet/register",
            json_body={"worker_id": "w9", "url": "http://127.0.0.1:9", "pid": 5},
        )
        assert response.status == 409

    def test_heartbeat_refreshes_the_registered_pid_only(self, fleet):
        supervisor, _, client = fleet
        view = client.post(
            "/fleet/heartbeat", json_body={"worker_id": "w0", "pid": 1000}
        ).json()["worker"]
        assert view["heartbeat_age"] is not None
        stale = client.post(
            "/fleet/heartbeat", json_body={"worker_id": "w0", "pid": 4242}
        ).json()["worker"]
        assert stale["pid"] == 1000
        assert supervisor.on_heartbeat("w0", 1000)["registered"]

    def test_workers_view_lists_both(self, fleet):
        _, _, client = fleet
        body = client.get("/fleet/workers").json()
        assert [view["id"] for view in body["workers"]] == ["w0", "w1"]
        assert all(view["registered"] for view in body["workers"])

    def test_resolve_matches_routing_and_requires_project(self, fleet):
        supervisor, _, client = fleet
        body = client.get("/fleet/resolve?project=alpha").json()
        assert body["worker"] == supervisor.route("alpha")
        assert body["url"].startswith("http://")
        assert client.get("/fleet/resolve").status == 400

    def test_service_stats_aggregates_across_workers(self, fleet):
        _, _, client = fleet
        body = client.get("/service/stats").json()
        assert set(body["workers"]) == {"w0", "w1"}
        assert body["open_shards"] == ["w0_shard", "w1_shard"]
        assert body["capacity"] == 8
        assert body["pool"] == {"hits": 2, "misses": 4}
        assert body["jobs"] == {"queued": 0}

    def test_service_stats_marks_unregistered_workers(self, fleet):
        supervisor, _, client = fleet
        with supervisor._lock:
            supervisor._handles["w1"].registered = False
        body = client.get("/service/stats").json()
        assert "error" in body["workers"]["w1"]
        assert "backend" in body["workers"]["w0"]
