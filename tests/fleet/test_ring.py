"""HashRing unit tests: placement stability, determinism, membership errors.

The properties that make the ring safe to put in front of per-project
SQLite shards: the same project always resolves to the same worker (in
every thread and every *process*), and a membership change moves only the
~1/N of projects whose arcs the change touched — everything else keeps
writing to the shard files it already owns.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import FleetError
from repro.fleet import HashRing

PROJECTS = [f"tenant_{i:03d}" for i in range(400)]


def _ring(ids: list[str]) -> HashRing:
    ring = HashRing()
    for worker_id in ids:
        ring.add(worker_id)
    return ring


class TestPlacementStability:
    def test_join_moves_about_one_nth_of_projects(self):
        before = _ring(["w0", "w1", "w2"]).assignments(PROJECTS)
        after = _ring(["w0", "w1", "w2", "w3"]).assignments(PROJECTS)
        moved = [p for p in PROJECTS if before[p] != after[p]]
        # Expect ~1/4 to move to the newcomer; allow generous slack but
        # fail loudly on modulo-style reshuffles (~3/4 moved).
        assert len(moved) / len(PROJECTS) < 0.45
        # Every move lands on the new worker — nothing shuffles between
        # pre-existing workers.
        assert all(after[p] == "w3" for p in moved)

    def test_leave_moves_only_the_leavers_projects(self):
        ring = _ring(["w0", "w1", "w2", "w3"])
        before = ring.assignments(PROJECTS)
        ring.remove("w3")
        after = ring.assignments(PROJECTS)
        for project in PROJECTS:
            if before[project] != "w3":
                assert after[project] == before[project]
            else:
                assert after[project] != "w3"

    def test_leave_then_join_restores_placement_exactly(self):
        ring = _ring(["w0", "w1", "w2"])
        before = ring.assignments(PROJECTS)
        ring.remove("w1")
        ring.add("w1")
        assert ring.assignments(PROJECTS) == before

    def test_load_spread_is_not_degenerate(self):
        counts: dict[str, int] = {}
        for owner in _ring(["w0", "w1", "w2", "w3"]).assignments(PROJECTS).values():
            counts[owner] = counts.get(owner, 0) + 1
        assert set(counts) == {"w0", "w1", "w2", "w3"}
        # With 64 vnodes each worker should own a real share; a worker
        # owning <5% of projects means the vnode smoothing is broken.
        assert min(counts.values()) > 0.05 * len(PROJECTS)


class TestDeterminism:
    def test_route_is_deterministic_across_processes(self):
        """A fresh interpreter (fresh hash salt) must agree on placement."""
        script = (
            "import json, sys\n"
            "from repro.fleet import HashRing\n"
            "ring = HashRing()\n"
            "for wid in ('w0', 'w1', 'w2'):\n"
            "    ring.add(wid)\n"
            "projects = json.load(sys.stdin)\n"
            "print(json.dumps(ring.assignments(projects)))\n"
        )
        src_dir = str(Path(__file__).resolve().parents[2] / "src")
        result = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(PROJECTS),
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src_dir, "PYTHONHASHSEED": "random", "PATH": ""},
            check=True,
        )
        assert json.loads(result.stdout) == _ring(["w0", "w1", "w2"]).assignments(PROJECTS)

    def test_route_ignores_insertion_order(self):
        assert _ring(["w0", "w1", "w2"]).assignments(PROJECTS) == _ring(
            ["w2", "w0", "w1"]
        ).assignments(PROJECTS)


class TestMembershipErrors:
    def test_duplicate_worker_id_is_rejected(self):
        ring = _ring(["w0"])
        with pytest.raises(FleetError, match="already on the ring"):
            ring.add("w0")

    def test_empty_worker_id_is_rejected(self):
        with pytest.raises(FleetError, match="non-empty"):
            HashRing().add("")

    def test_removing_an_unknown_worker_is_an_error(self):
        with pytest.raises(FleetError, match="not on the ring"):
            _ring(["w0"]).remove("w7")

    def test_routing_an_empty_ring_is_an_error(self):
        with pytest.raises(FleetError, match="no workers"):
            HashRing().route("tenant_000")

    def test_membership_queries(self):
        ring = _ring(["w0", "w1"])
        assert len(ring) == 2
        assert "w0" in ring and "w9" not in ring
        assert ring.workers() == ["w0", "w1"]

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
