"""WorkerAgent unit tests: registration, heartbeats, and orphan detection.

The orphan detector is the regression of interest: a worker whose
supervisor process died (nothing answers heartbeats anymore) must fire
``on_orphaned`` after the timeout instead of beating into the void
forever — a SIGKILLed harness must not leave immortal worker processes.
A *transient* control-plane outage shorter than the timeout must not.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.fleet.worker import DEFAULT_ORPHAN_TIMEOUT, WorkerAgent
from repro.service.server import make_server
from repro.webapp.framework import JsonResponse, Request, WebApp


def _control_plane():
    """A minimal supervisor stub: accepts register + heartbeat POSTs."""
    app = WebApp("control")
    beats = []

    @app.route("/fleet/register", methods=("POST",))
    def register(request: Request):
        return JsonResponse({"ok": True, "worker": request.get_json()["worker_id"]})

    @app.route("/fleet/heartbeat", methods=("POST",))
    def heartbeat(request: Request):
        beats.append(request.get_json()["worker_id"])
        return JsonResponse({"ok": True})

    server = make_server(app)
    _track_connections(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, thread, f"http://{host}:{port}", beats


def _track_connections(server):
    server.accepted = []
    original = server.get_request

    def tracking_get_request():
        request, addr = original()
        server.accepted.append(request)
        return request, addr

    server.get_request = tracking_get_request


def _stop(server, thread):
    # shutdown() only stops the accept loop; handler threads already
    # parked on a keep-alive connection would keep answering.  A dead
    # *process* takes its sockets with it, so the stub must too.
    server.shutdown()
    for sock in server.accepted:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass
    server.server_close()
    thread.join(timeout=2)


def _wait_for(predicate, *, timeout: float, message: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(message)


class TestHeartbeats:
    def test_registers_and_beats(self):
        server, thread, url, beats = _control_plane()
        agent = WorkerAgent("w7", url, interval=0.05)
        try:
            agent.start("http://127.0.0.1:59999")
            _wait_for(lambda: len(beats) >= 3, timeout=5.0,
                      message="expected heartbeats to land")
            assert agent.heartbeat_age() is not None
            assert agent.orphaned_for() is None
            assert agent.info()["id"] == "w7"
        finally:
            agent.stop()
            _stop(server, thread)

    def test_default_orphan_timeout_outlives_supervisor_hung_threshold(self):
        # A live supervisor restarts a silent worker at its heartbeat
        # timeout; the worker must wait comfortably longer before
        # concluding the supervisor itself is dead.
        from repro.fleet.supervisor import DEFAULT_HEARTBEAT_TIMEOUT

        assert DEFAULT_ORPHAN_TIMEOUT >= 2 * DEFAULT_HEARTBEAT_TIMEOUT


class TestOrphanDetection:
    def test_fires_on_orphaned_when_the_control_plane_dies(self):
        server, thread, url, beats = _control_plane()
        orphaned = threading.Event()
        agent = WorkerAgent(
            "w0", url, interval=0.05, orphan_timeout=0.3,
            on_orphaned=orphaned.set,
        )
        try:
            agent.start("http://127.0.0.1:59999")
            _wait_for(lambda: len(beats) >= 2, timeout=5.0,
                      message="expected heartbeats before the outage")
            _stop(server, thread)
            assert orphaned.wait(5.0), "orphan callback never fired"
            assert agent.orphaned_for() is not None
            assert agent.orphaned_for() >= 0.3
        finally:
            agent.stop()

    def test_transient_outage_does_not_orphan(self):
        server, thread, url, beats = _control_plane()
        host, port = server.server_address[:2]
        orphaned = threading.Event()
        agent = WorkerAgent(
            "w0", url, interval=0.05, orphan_timeout=2.0,
            on_orphaned=orphaned.set,
        )
        try:
            agent.start("http://127.0.0.1:59999")
            _wait_for(lambda: len(beats) >= 2, timeout=5.0,
                      message="expected heartbeats before the blip")
            _stop(server, thread)
            _wait_for(lambda: agent.orphaned_for() is not None, timeout=5.0,
                      message="expected failing heartbeats during the blip")
            # Control plane comes back on the same port well inside the
            # orphan timeout: the failure streak must reset, not fire.
            app = WebApp("control2")

            @app.route("/fleet/heartbeat", methods=("POST",))
            def heartbeat(_request: Request):
                return JsonResponse({"ok": True})

            server2 = make_server(app, host=host, port=port)
            _track_connections(server2)
            thread2 = threading.Thread(target=server2.serve_forever, daemon=True)
            thread2.start()
            try:
                _wait_for(lambda: agent.orphaned_for() is None, timeout=5.0,
                          message="expected the failure streak to reset")
                assert not orphaned.is_set()
            finally:
                _stop(server2, thread2)
        finally:
            agent.stop()

    def test_orphan_timeout_none_disables_detection(self):
        orphaned = threading.Event()
        agent = WorkerAgent(
            "w0", "http://127.0.0.1:1", interval=0.02, orphan_timeout=None,
            on_orphaned=orphaned.set,
        )
        # Never registered, so drive the beat loop directly: every beat
        # fails, but with no timeout the loop just keeps trying.
        thread = threading.Thread(target=agent._beat, daemon=True)
        thread.start()
        try:
            time.sleep(0.3)
            assert not orphaned.is_set()
            assert agent.orphaned_for() is not None
        finally:
            agent.stop()
            thread.join(timeout=2)
