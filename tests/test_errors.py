"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            errors.ConfigError,
            errors.DataFrameError,
            errors.ColumnNotFoundError,
            errors.LengthMismatchError,
            errors.DatabaseError,
            errors.SchemaError,
            errors.VersioningError,
            errors.ObjectNotFoundError,
            errors.CommitNotFoundError,
            errors.RecordingError,
            errors.ReplayError,
            errors.CheckpointError,
            errors.PropagationError,
            errors.BuildError,
            errors.CycleError,
            errors.TargetNotFoundError,
            errors.PipelineError,
            errors.ModelError,
            errors.WebAppError,
            errors.RouteNotFoundError,
            errors.GovernanceError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exception_class):
        assert issubclass(exception_class, errors.ReproError)

    def test_specialized_errors_derive_from_their_domain(self):
        assert issubclass(errors.ColumnNotFoundError, errors.DataFrameError)
        assert issubclass(errors.SchemaError, errors.DatabaseError)
        assert issubclass(errors.CycleError, errors.BuildError)
        assert issubclass(errors.RouteNotFoundError, errors.WebAppError)

    def test_column_not_found_message_lists_available(self):
        error = errors.ColumnNotFoundError("acc", ("loss", "recall"))
        assert "acc" in str(error)
        assert "loss" in str(error)

    def test_route_not_found_records_path_and_method(self):
        error = errors.RouteNotFoundError("/missing", "POST")
        assert error.path == "/missing"
        assert "POST /missing" in str(error)

    def test_catching_repro_error_catches_domain_errors(self):
        with pytest.raises(errors.ReproError):
            raise errors.BuildError("boom")
