"""Tests for the content-addressed object store."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ObjectNotFoundError
from repro.versioning.objects import ObjectStore, hash_bytes


@pytest.fixture()
def store(tmp_path):
    return ObjectStore(tmp_path / "objects")


class TestHashing:
    def test_hash_is_deterministic(self):
        assert hash_bytes(b"abc") == hash_bytes(b"abc")

    def test_hash_differs_for_different_content(self):
        assert hash_bytes(b"abc") != hash_bytes(b"abd")


class TestStore:
    def test_put_get_roundtrip(self, store):
        object_id = store.put(b"hello world")
        assert store.get(object_id) == b"hello world"

    def test_put_is_idempotent(self, store):
        first = store.put(b"same")
        second = store.put(b"same")
        assert first == second
        assert len(store) == 1

    def test_text_helpers(self, store):
        object_id = store.put_text("unicode ✓ content")
        assert store.get_text(object_id) == "unicode ✓ content"

    def test_exists_and_contains(self, store):
        object_id = store.put(b"x")
        assert store.exists(object_id)
        assert object_id in store
        assert "0" * 64 not in store

    def test_missing_object_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.get("f" * 64)

    def test_malformed_id_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.get("not-a-hash!")

    def test_ids_enumerates_everything(self, store):
        ids = {store.put(f"object {i}".encode()) for i in range(5)}
        assert set(store.ids()) == ids

    def test_fanout_layout_on_disk(self, store, tmp_path):
        object_id = store.put(b"content")
        expected = tmp_path / "objects" / object_id[:2] / object_id[2:]
        assert expected.exists()


@given(data=st.binary(max_size=512))
def test_property_roundtrip_arbitrary_bytes(tmp_path_factory, data):
    store = ObjectStore(tmp_path_factory.mktemp("objs"))
    object_id = store.put(data)
    assert store.get(object_id) == data
    assert object_id == hash_bytes(data)
