"""Snapshot cache and append-only journal tests for the version repository."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import VersioningError
from repro.versioning.repository import Repository


@pytest.fixture()
def workdir(tmp_path):
    (tmp_path / "train.py").write_text("print('v1')\n")
    (tmp_path / "infer.py").write_text("print('infer')\n")
    return tmp_path


@pytest.fixture()
def repo(workdir):
    repository = Repository(workdir / ".objects", workdir)
    repository.track("train.py", "infer.py")
    return repository


def _age(path, seconds: float = 3600.0) -> None:
    """Push a file's mtime into the past so the racy-mtime guard trusts it."""
    old = time.time() - seconds
    os.utime(path, (old, old))


class TestSnapshotCache:
    def test_unchanged_file_reuses_cached_object_id_without_hashing(self, repo, workdir, monkeypatch):
        _age(workdir / "train.py")
        _age(workdir / "infer.py")
        first = repo.commit("v1")
        puts = []
        original_put = repo.store.put
        monkeypatch.setattr(repo.store, "put", lambda data: puts.append(1) or original_put(data))
        second = repo.commit("v1 again")
        assert puts == []  # neither file was read or hashed
        assert second.vid == first.vid
        assert repo.snapshot_stats["hits"] == 2

    def test_modified_file_is_rehashed(self, repo, workdir):
        _age(workdir / "train.py")
        _age(workdir / "infer.py")
        first = repo.commit("v1")
        (workdir / "train.py").write_text("print('v2')\n")
        second = repo.commit("v2")
        assert second.vid != first.vid
        assert first.files["train.py"] != second.files["train.py"]
        assert first.files["infer.py"] == second.files["infer.py"]

    def test_racy_same_size_rewrite_is_detected(self, repo, workdir):
        # Two same-length contents written back-to-back: mtime and size may
        # be indistinguishable on coarse filesystems, so the cache must not
        # trust entries whose mtime is within the racy window.
        first = repo.commit("v1")
        (workdir / "train.py").write_text("print('v2')\n")  # same byte length
        second = repo.commit("v2")
        assert second.vid != first.vid

    def test_missing_tracked_file_still_skipped(self, repo):
        repo.track("not_there.py")
        commit = repo.commit("v1")
        assert "not_there.py" not in commit.files


class TestAppendOnlyJournal:
    def test_events_append_instead_of_rewriting_history(self, repo, workdir):
        repo.commit("v1")
        (workdir / "train.py").write_text("print('v2')\n")
        repo.commit("v2")
        log_path = workdir / ".objects" / Repository.LOG_NAME
        events = [json.loads(line) for line in log_path.read_text().splitlines()]
        ops = [event["op"] for event in events]
        assert ops.count("commit") == 2
        assert "track" in ops

    def test_journal_replays_on_reopen(self, repo, workdir):
        vid1 = repo.commit("v1").vid
        (workdir / "train.py").write_text("print('v2')\n")
        vid2 = repo.commit("v2").vid
        repo.untrack("infer.py")
        reopened = Repository(workdir / ".objects", workdir)
        assert [c.vid for c in reopened.log()] == [vid1, vid2]
        assert reopened.tracked == ["train.py"]

    def test_compaction_folds_journal_into_snapshot(self, repo, workdir, monkeypatch):
        monkeypatch.setattr(Repository, "COMPACT_EVERY", 3)
        vids = []
        for i in range(5):
            (workdir / "train.py").write_text(f"print({i})\n")
            vids.append(repo.commit(f"v{i}").vid)
        log_path = workdir / ".objects" / Repository.LOG_NAME
        snapshot = json.loads((workdir / ".objects" / Repository.JOURNAL_NAME).read_text())
        assert len(snapshot["commits"]) >= 3  # compaction ran at least once
        if log_path.exists():
            assert len(log_path.read_text().splitlines()) < 5
        reopened = Repository(workdir / ".objects", workdir)
        assert [c.vid for c in reopened.log()] == vids
        assert reopened.tracked == ["infer.py", "train.py"]

    def test_corrupt_journal_line_raises(self, repo, workdir):
        repo.commit("v1")
        log_path = workdir / ".objects" / Repository.LOG_NAME
        log_path.write_text(log_path.read_text() + "{not json\n")
        with pytest.raises(VersioningError):
            Repository(workdir / ".objects", workdir)

    def test_unknown_journal_op_raises(self, repo, workdir):
        log_path = workdir / ".objects" / Repository.LOG_NAME
        log_path.write_text(json.dumps({"op": "merge"}) + "\n")
        with pytest.raises(VersioningError):
            Repository(workdir / ".objects", workdir)

    def test_interrupted_compaction_does_not_duplicate_commits(self, repo, workdir):
        """Regression: a crash between compaction's snapshot replace and
        journal unlink leaves folded events behind; replay must not append
        them twice."""
        vids = []
        for i in range(3):
            (workdir / "train.py").write_text(f"print({i})\n")
            vids.append(repo.commit(f"v{i}").vid)
        log_path = workdir / ".objects" / Repository.LOG_NAME
        leftover_journal = log_path.read_text()
        repo._save_snapshot()  # compaction step 1: snapshot folds everything
        log_path.write_text(leftover_journal)  # crash before step 2's unlink
        reopened = Repository(workdir / ".objects", workdir)
        assert [c.vid for c in reopened.log()] == vids  # no duplicates
        assert reopened.head().vid == vids[-1]

    def test_legacy_snapshot_only_layout_still_loads(self, workdir):
        # A repository written before the append-only journal existed has a
        # commits.json and no commits.jsonl.
        repo = Repository(workdir / ".objects", workdir)
        repo.track("train.py")
        vid = repo.commit("v1").vid
        repo._save_snapshot()  # fold everything into commits.json
        assert not (workdir / ".objects" / Repository.LOG_NAME).exists()
        reopened = Repository(workdir / ".objects", workdir)
        assert vid in reopened
        assert reopened.tracked == ["train.py"]
