"""Tests for the Myers line diff and patch application."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.versioning.diff import DiffOp, Patch, diff_lines, diff_stats, matching_lines, unified_diff


class TestDiffLines:
    def test_identical_sequences_are_one_equal_block(self):
        lines = ["a", "b", "c"]
        ops = diff_lines(lines, lines)
        assert [op.tag for op in ops] == ["equal"]
        assert ops[0].a_end == 3

    def test_pure_insertion(self):
        ops = diff_lines(["a", "c"], ["a", "b", "c"])
        tags = [op.tag for op in ops]
        assert "insert" in tags
        assert "delete" not in tags

    def test_pure_deletion(self):
        ops = diff_lines(["a", "b", "c"], ["a", "c"])
        tags = [op.tag for op in ops]
        assert "delete" in tags
        assert "insert" not in tags

    def test_replacement(self):
        ops = diff_lines(["a", "x", "c"], ["a", "y", "c"])
        assert any(op.tag == "replace" for op in ops)

    def test_empty_inputs(self):
        assert diff_lines([], []) == []
        assert [op.tag for op in diff_lines([], ["a"])] == ["insert"]
        assert [op.tag for op in diff_lines(["a"], [])] == ["delete"]

    def test_ops_cover_both_sequences_contiguously(self):
        a = ["1", "2", "3", "4"]
        b = ["1", "x", "3", "5", "6"]
        ops = diff_lines(a, b)
        assert ops[0].a_start == 0 and ops[0].b_start == 0
        assert ops[-1].a_end == len(a) and ops[-1].b_end == len(b)
        for prev, nxt in zip(ops, ops[1:]):
            assert prev.a_end == nxt.a_start
            assert prev.b_end == nxt.b_start


class TestMatchingLines:
    def test_matches_are_content_equal(self):
        a = ["def f():", "    x = 1", "    return x"]
        b = ["def f():", "    x = 2", "    return x"]
        pairs = matching_lines(a, b)
        assert (0, 0) in pairs and (2, 2) in pairs
        assert all(a[i] == b[j] for i, j in pairs)

    def test_matches_are_monotonic(self):
        a = [str(i) for i in range(20)]
        b = [str(i) for i in range(0, 20, 2)] + ["x"]
        pairs = matching_lines(a, b)
        assert pairs == sorted(pairs)


class TestDiffStats:
    def test_counts(self):
        stats = diff_stats(["a", "b", "c"], ["a", "c", "d"])
        assert stats["unchanged"] == 2
        assert stats["deleted"] == 1
        assert stats["added"] == 1


class TestUnifiedDiff:
    def test_empty_for_identical_inputs(self):
        assert unified_diff(["same"], ["same"]) == ""

    def test_contains_markers_and_labels(self):
        rendered = unified_diff(["old line"], ["new line"], a_label="old.py", b_label="new.py")
        assert "--- old.py" in rendered
        assert "+++ new.py" in rendered
        assert "-old line" in rendered
        assert "+new line" in rendered
        assert "@@" in rendered


class TestPatch:
    def test_apply_reconstructs_new_side(self):
        a = ["a", "b", "c", "d"]
        b = ["a", "x", "c", "e", "f"]
        assert Patch(a, b).apply(a) == b


# ---------------------------------------------------------------- properties

line_strategy = st.lists(st.sampled_from(["a", "b", "c", "def f():", "    return 1", ""]), max_size=30)


@settings(max_examples=60)
@given(line_strategy, line_strategy)
def test_property_patch_roundtrip(a, b):
    assert Patch(a, b).apply(a) == b


@settings(max_examples=60)
@given(line_strategy, line_strategy)
def test_property_stats_are_consistent_with_lengths(a, b):
    stats = diff_stats(a, b)
    assert stats["unchanged"] + stats["deleted"] == len(a)
    assert stats["unchanged"] + stats["added"] == len(b)


@settings(max_examples=60)
@given(line_strategy)
def test_property_self_diff_is_all_equal(a):
    assert diff_stats(a, a) == {"added": 0, "deleted": 0, "unchanged": len(a)}
