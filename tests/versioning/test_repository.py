"""Tests for the linear-history version repository."""

from __future__ import annotations

import pytest

from repro.errors import CommitNotFoundError, VersioningError
from repro.versioning.repository import Repository


@pytest.fixture()
def workdir(tmp_path):
    (tmp_path / "train.py").write_text("print('v1')\n")
    (tmp_path / "infer.py").write_text("print('infer')\n")
    return tmp_path


@pytest.fixture()
def repo(workdir):
    repository = Repository(workdir / ".objects", workdir)
    repository.track("train.py", "infer.py")
    return repository


class TestTracking:
    def test_tracked_files_listed(self, repo):
        assert repo.tracked == ["infer.py", "train.py"]

    def test_untrack(self, repo):
        repo.untrack("infer.py")
        assert repo.tracked == ["train.py"]

    def test_missing_tracked_file_is_skipped(self, repo, workdir):
        repo.track("not_there.py")
        commit = repo.commit("v1")
        assert "not_there.py" not in commit.files


class TestCommits:
    def test_first_commit_has_no_parent(self, repo):
        commit = repo.commit("initial")
        assert commit.parent_vid is None
        assert set(commit.files) == {"train.py", "infer.py"}

    def test_commit_chain_links_parents(self, repo, workdir):
        first = repo.commit("v1")
        (workdir / "train.py").write_text("print('v2')\n")
        second = repo.commit("v2")
        assert second.parent_vid == first.vid
        assert len(repo) == 2
        assert repo.head().vid == second.vid

    def test_identical_content_reuses_commit(self, repo):
        first = repo.commit("v1")
        second = repo.commit("v1 again")
        assert first.vid == second.vid
        assert len(repo) == 1

    def test_get_unknown_vid_raises(self, repo):
        repo.commit("v1")
        with pytest.raises(CommitNotFoundError):
            repo.get("doesnotexist")

    def test_journal_persists_across_instances(self, repo, workdir):
        vid = repo.commit("v1").vid
        reopened = Repository(workdir / ".objects", workdir)
        assert vid in reopened
        assert reopened.tracked == ["infer.py", "train.py"]


class TestFileAccess:
    def test_read_file_at_version(self, repo, workdir):
        first = repo.commit("v1")
        (workdir / "train.py").write_text("print('v2')\n")
        second = repo.commit("v2")
        assert "v1" in repo.read_file(first.vid, "train.py")
        assert "v2" in repo.read_file(second.vid, "train.py")

    def test_read_missing_file_raises(self, repo):
        commit = repo.commit("v1")
        with pytest.raises(VersioningError):
            repo.read_file(commit.vid, "other.py")

    def test_file_exists(self, repo):
        commit = repo.commit("v1")
        assert repo.file_exists(commit.vid, "train.py")
        assert not repo.file_exists(commit.vid, "nope.py")
        assert not repo.file_exists("badvid", "train.py")

    def test_checkout_materializes_version(self, repo, workdir, tmp_path):
        first = repo.commit("v1")
        (workdir / "train.py").write_text("print('v2')\n")
        repo.commit("v2")
        destination = tmp_path / "restore"
        written = repo.checkout(first.vid, destination)
        assert written == ["infer.py", "train.py"]
        assert "v1" in (destination / "train.py").read_text()


class TestDiffing:
    def test_diff_between_versions(self, repo, workdir):
        first = repo.commit("v1")
        (workdir / "train.py").write_text("print('v2')\nprint('extra')\n")
        second = repo.commit("v2")
        rendered = repo.diff(first.vid, second.vid, "train.py")
        assert "-print('v1')" in rendered
        assert "+print('v2')" in rendered

    def test_change_summary_counts(self, repo, workdir):
        first = repo.commit("v1")
        (workdir / "train.py").write_text("print('v1')\nprint('added')\n")
        second = repo.commit("v2")
        summary = repo.change_summary(first.vid, second.vid)
        assert summary["train.py"]["added"] == 1
        assert summary["train.py"]["deleted"] == 0
        assert summary["infer.py"]["added"] == 0

    def test_corrupt_journal_raises(self, workdir):
        objects = workdir / ".objects"
        objects.mkdir(exist_ok=True)
        (objects / Repository.JOURNAL_NAME).write_text("{not json")
        with pytest.raises(VersioningError):
            Repository(objects, workdir)
