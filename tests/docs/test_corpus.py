"""Tests for the synthetic document corpus."""

from __future__ import annotations

import json

import pytest

from repro.docs.corpus import DocumentCorpus, generate_corpus


@pytest.fixture()
def corpus():
    return generate_corpus(num_documents=5, min_pages=3, max_pages=8, scanned_fraction=0.4, seed=11)


class TestGeneration:
    def test_document_count_and_page_bounds(self, corpus):
        assert len(corpus) == 5
        for document in corpus:
            assert 3 <= len(document) <= 8

    def test_generation_is_deterministic_per_seed(self):
        a = generate_corpus(num_documents=3, seed=5)
        b = generate_corpus(num_documents=3, seed=5)
        assert [d.name for d in a] == [d.name for d in b]
        assert a.documents[0].pages[0].text == b.documents[0].pages[0].text
        c = generate_corpus(num_documents=3, seed=6)
        assert a.documents[0].pages[1].text != c.documents[0].pages[1].text

    def test_first_page_flags(self, corpus):
        for document in corpus:
            flags = [p.is_first_page for p in document]
            assert flags[0] is True
            assert sum(flags) == 1

    def test_page_numbers_are_sequential(self, corpus):
        for document in corpus:
            assert [p.number for p in document] == list(range(1, len(document) + 1))

    def test_first_page_contains_title(self, corpus):
        for document in corpus:
            assert document.title in document.pages[0].text

    def test_scanned_fraction_roughly_respected(self):
        corpus = generate_corpus(num_documents=20, min_pages=4, max_pages=8, scanned_fraction=0.5, seed=0)
        scanned = sum(p.is_scanned for d in corpus for p in d)
        assert 0.3 < scanned / corpus.total_pages < 0.7

    def test_zero_scanned_fraction(self):
        corpus = generate_corpus(num_documents=3, scanned_fraction=0.0, seed=0)
        assert not any(p.is_scanned for d in corpus for p in d)


class TestAccess:
    def test_get_by_name_and_missing(self, corpus):
        name = corpus.document_names()[0]
        assert corpus.get(name).name == name
        with pytest.raises(KeyError):
            corpus.get("missing.pdf")

    def test_total_pages(self, corpus):
        assert corpus.total_pages == sum(len(d) for d in corpus)

    def test_word_count_positive(self, corpus):
        assert all(p.word_count > 0 for d in corpus for p in d)


class TestPersistence:
    def test_write_to_creates_page_files_and_manifest(self, corpus, tmp_path):
        out = corpus.write_to(tmp_path / "corpus")
        manifest = json.loads((out / "manifest.json").read_text())
        assert set(manifest) == set(corpus.document_names())
        first_doc = corpus.documents[0]
        page_file = out / first_doc.name / "page_001.txt"
        assert page_file.exists()
        assert page_file.read_text() == first_doc.pages[0].text
        assert manifest[first_doc.name][0]["is_first_page"] is True

    def test_empty_corpus_roundtrip(self, tmp_path):
        empty = DocumentCorpus()
        out = empty.write_to(tmp_path / "empty")
        assert json.loads((out / "manifest.json").read_text()) == {}
