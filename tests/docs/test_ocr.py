"""Tests for the simulated OCR / text extraction channel."""

from __future__ import annotations

import pytest

from repro.docs.corpus import Document, Page
from repro.docs.ocr import SOURCE_OCR, SOURCE_TXT, read_page, simulate_ocr


@pytest.fixture()
def document():
    return Document(
        name="doc.pdf",
        title="Title",
        topic="topic",
        pages=[
            Page(number=1, heading="Title", text="Clean digital text.\nPage 1", is_first_page=True, is_scanned=False),
            Page(number=2, heading=None, text="Scanned page with Olive l1nes.\nPage 2", is_scanned=True),
        ],
    )


class TestSimulateOcr:
    def test_zero_error_rate_is_identity(self):
        text = "The quick brown fox. Page 3"
        noisy, applied = simulate_ocr(text, error_rate=0.0)
        assert noisy == text
        assert applied == 0.0

    def test_noise_is_deterministic_for_seed(self):
        text = "Some reasonably long text for corruption." * 3
        a, _ = simulate_ocr(text, error_rate=0.1, seed=1)
        b, _ = simulate_ocr(text, error_rate=0.1, seed=1)
        c, _ = simulate_ocr(text, error_rate=0.1, seed=2)
        assert a == b
        assert a != c

    def test_higher_error_rate_corrupts_more(self):
        text = "abcdefghijklmnopqrstuvwxyz" * 20
        _low, low_rate = simulate_ocr(text, error_rate=0.01, seed=0)
        _high, high_rate = simulate_ocr(text, error_rate=0.2, seed=0)
        assert high_rate > low_rate

    def test_invalid_error_rate_rejected(self):
        with pytest.raises(ValueError):
            simulate_ocr("text", error_rate=1.5)


class TestReadPage:
    def test_digital_page_uses_txt_channel(self, document):
        extraction = read_page(document, 0)
        assert extraction.text_src == SOURCE_TXT
        assert extraction.text == document.pages[0].text
        assert extraction.char_error_estimate == 0.0

    def test_scanned_page_uses_ocr_channel(self, document):
        extraction = read_page(document, 1, ocr_error_rate=0.1, seed=3)
        assert extraction.text_src == SOURCE_OCR

    def test_as_tuple_matches_figure3_destructuring(self, document):
        text_src, page_text = read_page(document, 0).as_tuple()
        assert text_src == SOURCE_TXT
        assert "Clean digital text" in page_text
