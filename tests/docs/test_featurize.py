"""Tests for page featurization (Figure 3 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import active_session
from repro.docs.corpus import generate_corpus
from repro.docs.featurize import analyze_text, extract_features, feature_vector, featurize_corpus
from repro.docs.ocr import read_page


@pytest.fixture()
def corpus():
    return generate_corpus(num_documents=3, min_pages=2, max_pages=4, seed=2)


class TestAnalyzeText:
    def test_extracts_page_numbers(self):
        headings, numbers = analyze_text("Some body text\n\nPage 7")
        assert numbers == [7]

    def test_extracts_section_headings(self):
        headings, _ = analyze_text("Section 3: Housing Court Filings\ncontent\n\nPage 2")
        assert headings == ["Section 3: Housing Court Filings"]

    def test_no_matches(self):
        headings, numbers = analyze_text("just plain text without structure")
        assert headings == [] and numbers == []


class TestExtractFeatures:
    def test_feature_fields(self, corpus):
        document = corpus.documents[0]
        extraction = read_page(document, 0)
        features = extract_features(document, 0, extraction)
        assert features.document == document.name
        assert features.page_index == 0
        assert features.word_count > 0
        assert 0.0 <= features.uppercase_ratio <= 1.0
        assert 0.0 <= features.digit_ratio <= 1.0

    def test_first_page_label_heuristic(self, corpus):
        document = corpus.documents[0]
        first = extract_features(document, 0, read_page(document, 0))
        assert first.label_first_page() == 1
        if len(document) > 1:
            later = extract_features(document, 1, read_page(document, 1))
            assert later.label_first_page() == 0

    def test_feature_vector_shape_and_determinism(self, corpus):
        document = corpus.documents[0]
        features = extract_features(document, 0, read_page(document, 0))
        vector = feature_vector(features)
        assert vector.shape == (8,)
        assert np.array_equal(vector, feature_vector(features))


class TestFeaturizeCorpus:
    def test_yields_one_record_per_page(self, corpus):
        records = list(featurize_corpus(corpus, use_flor=False))
        assert len(records) == corpus.total_pages

    def test_document_filter(self, corpus):
        wanted = corpus.document_names()[:1]
        records = list(featurize_corpus(corpus, use_flor=False, documents=wanted))
        assert {r.document for r in records} == set(wanted)

    def test_flor_instrumentation_logs_figure3_names(self, corpus, session):
        with active_session(session):
            list(featurize_corpus(corpus))
        frame = session.dataframe("text_src", "headings", "page_numbers", "first_page")
        assert len(frame) == corpus.total_pages
        assert set(frame["text_src"].unique()) <= {"OCR", "TXT"}
        assert "document_value" in frame.columns
        assert "page" in frame.columns

    def test_page_text_logged(self, corpus, session):
        with active_session(session):
            list(featurize_corpus(corpus))
        frame = session.dataframe("page_text")
        assert len(frame) == corpus.total_pages
        assert all(isinstance(row["page_text"], str) for row in frame.to_records())
