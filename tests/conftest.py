"""Shared fixtures: hermetic FlorDB projects rooted in pytest tmp dirs."""

from __future__ import annotations

import pytest

from repro import ProjectConfig, Session
from repro.relational.database import Database


@pytest.fixture()
def project(tmp_path):
    """A fresh project configuration rooted in a temporary directory."""
    return ProjectConfig(tmp_path / "proj", "testproj").ensure_layout()


@pytest.fixture()
def session(project):
    """A record-mode session with a fixed filename for deterministic stamping."""
    session = Session(project, default_filename="train.py")
    yield session
    session.close()


@pytest.fixture()
def free_session(project):
    """A record-mode session that infers filenames from the caller."""
    session = Session(project)
    yield session
    session.close()


@pytest.fixture()
def db():
    """An in-memory database with the FlorDB schema."""
    database = Database(":memory:")
    yield database
    database.close()


@pytest.fixture()
def make_session(tmp_path):
    """Factory for additional sessions in isolated project roots."""
    created = []

    def factory(name: str = "proj", **kwargs) -> Session:
        config = ProjectConfig(tmp_path / name, name)
        session = Session(config, **kwargs)
        created.append(session)
        return session

    yield factory
    for session in created:
        session.close()
