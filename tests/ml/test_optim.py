"""Tests for the SGD and Adam optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.mlp import MLPClassifier
from repro.ml.optim import SGD, Adam


@pytest.fixture()
def problem():
    rng = np.random.default_rng(0)
    x = np.vstack([rng.normal(-1.5, 0.4, size=(40, 3)), rng.normal(1.5, 0.4, size=(40, 3))])
    y = np.array([0] * 40 + [1] * 40)
    return x, y


def run_steps(model, optimizer, x, y, steps=40):
    losses = []
    for _ in range(steps):
        optimizer.zero_grad()
        losses.append(model.loss_and_backward(x, y))
        optimizer.step()
    return losses


class TestSGD:
    def test_invalid_lr(self):
        with pytest.raises(ModelError):
            SGD(MLPClassifier(2, 2), lr=0.0)

    def test_loss_decreases(self, problem):
        x, y = problem
        model = MLPClassifier(3, 2, hidden_sizes=(6,), seed=0)
        losses = run_steps(model, SGD(model, lr=0.3), x, y)
        assert losses[-1] < losses[0]

    def test_momentum_converges(self, problem):
        x, y = problem
        model = MLPClassifier(3, 2, hidden_sizes=(6,), seed=0)
        losses = run_steps(model, SGD(model, lr=0.1, momentum=0.9), x, y)
        assert losses[-1] < losses[0]

    def test_step_changes_weights(self, problem):
        x, y = problem
        model = MLPClassifier(3, 2, seed=0)
        optimizer = SGD(model, lr=0.1)
        before = model.layers[0].W.copy()
        optimizer.zero_grad()
        model.loss_and_backward(x, y)
        optimizer.step()
        assert not np.array_equal(before, model.layers[0].W)

    def test_state_dict_roundtrip(self, problem):
        x, y = problem
        model = MLPClassifier(3, 2, seed=0)
        optimizer = SGD(model, lr=0.1, momentum=0.5)
        run_steps(model, optimizer, x, y, steps=3)
        state = optimizer.state_dict()
        fresh = SGD(model, lr=0.9)
        fresh.load_state_dict(state)
        assert fresh.lr == 0.1
        assert fresh.momentum == 0.5
        assert np.array_equal(fresh._velocity[0]["W"], optimizer._velocity[0]["W"])


class TestAdam:
    def test_invalid_lr(self):
        with pytest.raises(ModelError):
            Adam(MLPClassifier(2, 2), lr=-1.0)

    def test_loss_decreases(self, problem):
        x, y = problem
        model = MLPClassifier(3, 2, hidden_sizes=(6,), seed=0)
        losses = run_steps(model, Adam(model, lr=0.05), x, y)
        assert losses[-1] < losses[0] * 0.5

    def test_step_counter_increments(self, problem):
        x, y = problem
        model = MLPClassifier(3, 2, seed=0)
        optimizer = Adam(model)
        run_steps(model, optimizer, x, y, steps=5)
        assert optimizer.t == 5

    def test_state_dict_roundtrip_preserves_moments(self, problem):
        x, y = problem
        model = MLPClassifier(3, 2, seed=0)
        optimizer = Adam(model, lr=0.01)
        run_steps(model, optimizer, x, y, steps=4)
        state = optimizer.state_dict()
        fresh = Adam(model, lr=0.5)
        fresh.load_state_dict(state)
        assert fresh.t == 4
        assert fresh.lr == 0.01
        assert np.array_equal(fresh._m[0]["W"], optimizer._m[0]["W"])
        assert np.array_equal(fresh._v[0]["b"], optimizer._v[0]["b"])

    def test_adam_and_sgd_reach_high_accuracy(self, problem):
        x, y = problem
        for optimizer_cls, kwargs in [(Adam, {"lr": 0.05}), (SGD, {"lr": 0.3})]:
            model = MLPClassifier(3, 2, hidden_sizes=(8,), seed=0)
            run_steps(model, optimizer_cls(model, **kwargs), x, y, steps=60)
            assert (model.predict(x) == y).mean() > 0.95
