"""Tests for the NumPy MLP: shapes, gradients, state dict round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.mlp import Linear, MLPClassifier, cross_entropy, relu, softmax


class TestActivations:
    def test_relu_clamps_negatives(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        assert np.array_equal(relu(x), np.array([[0.0, 0.0, 2.0]]))

    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [1000.0, 1000.0, 1000.0]])
        probabilities = softmax(logits)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert not np.isnan(probabilities).any()  # numerically stable

    def test_cross_entropy_of_perfect_prediction_is_near_zero(self):
        probabilities = np.array([[1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1])
        assert cross_entropy(probabilities, labels) < 1e-6


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        out = layer.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_backward_before_forward_raises(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        with pytest.raises(ModelError):
            layer.backward(np.zeros((5, 3)))

    def test_zero_grad_clears_accumulators(self):
        layer = Linear(2, 2, np.random.default_rng(0))
        layer.forward(np.ones((3, 2)))
        layer.backward(np.ones((3, 2)))
        assert np.abs(layer.dW).sum() > 0
        layer.zero_grad()
        assert np.abs(layer.dW).sum() == 0


class TestMLPClassifier:
    def test_constructor_validation(self):
        with pytest.raises(ModelError):
            MLPClassifier(0, 2)
        with pytest.raises(ModelError):
            MLPClassifier(4, 0)

    def test_forward_and_predict_shapes(self):
        model = MLPClassifier(6, 4, hidden_sizes=(8, 8), seed=0)
        x = np.random.default_rng(0).normal(size=(10, 6))
        assert model.forward(x).shape == (10, 4)
        assert model.predict(x).shape == (10,)
        assert model.predict_proba(x).shape == (10, 4)
        assert np.allclose(model.predict_proba(x).sum(axis=1), 1.0)

    def test_linear_model_with_no_hidden_layers(self):
        model = MLPClassifier(3, 2, hidden_sizes=(), seed=0)
        assert len(model.layers) == 1
        assert model.forward(np.zeros((1, 3))).shape == (1, 2)

    def test_parameter_count(self):
        model = MLPClassifier(4, 3, hidden_sizes=(5,), seed=0)
        assert model.parameter_count() == (4 * 5 + 5) + (5 * 3 + 3)

    def test_seed_reproducibility(self):
        a = MLPClassifier(4, 2, seed=7)
        b = MLPClassifier(4, 2, seed=7)
        assert np.array_equal(a.layers[0].W, b.layers[0].W)
        c = MLPClassifier(4, 2, seed=8)
        assert not np.array_equal(a.layers[0].W, c.layers[0].W)

    def test_numerical_gradient_check(self):
        """Backprop gradients must match finite differences."""
        rng = np.random.default_rng(0)
        model = MLPClassifier(3, 2, hidden_sizes=(4,), seed=1)
        x = rng.normal(size=(5, 3))
        labels = rng.integers(0, 2, size=5)

        model.zero_grad()
        model.loss_and_backward(x, labels)
        analytic = model.layers[0].dW.copy()

        eps = 1e-6
        w = model.layers[0].W
        for index in [(0, 0), (1, 2), (2, 3)]:
            original = w[index]
            w[index] = original + eps
            loss_plus = cross_entropy(model.predict_proba(x), labels)
            w[index] = original - eps
            loss_minus = cross_entropy(model.predict_proba(x), labels)
            w[index] = original
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert analytic[index] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_training_reduces_loss(self):
        from repro.ml.optim import SGD

        rng = np.random.default_rng(0)
        x = np.vstack([rng.normal(-2, 0.5, size=(30, 2)), rng.normal(2, 0.5, size=(30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        model = MLPClassifier(2, 2, hidden_sizes=(8,), seed=0)
        optimizer = SGD(model, lr=0.5)
        first_loss = None
        last_loss = None
        for _ in range(50):
            optimizer.zero_grad()
            loss = model.loss_and_backward(x, y)
            optimizer.step()
            if first_loss is None:
                first_loss = loss
            last_loss = loss
        assert last_loss < first_loss * 0.5
        assert (model.predict(x) == y).mean() > 0.9


class TestStateDict:
    def test_roundtrip_restores_exact_weights(self):
        model = MLPClassifier(4, 3, hidden_sizes=(6,), seed=0)
        saved = model.state_dict()
        model.layers[0].W += 1.0
        model.load_state_dict(saved)
        assert np.array_equal(model.state_dict()["layers.0.W"], saved["layers.0.W"])

    def test_state_dict_is_a_copy(self):
        model = MLPClassifier(4, 3, seed=0)
        saved = model.state_dict()
        model.layers[0].W += 1.0
        assert not np.array_equal(saved["layers.0.W"], model.layers[0].W)

    def test_missing_keys_rejected(self):
        model = MLPClassifier(4, 3, seed=0)
        with pytest.raises(ModelError):
            model.load_state_dict({})

    def test_shape_mismatch_rejected(self):
        model = MLPClassifier(4, 3, hidden_sizes=(6,), seed=0)
        other = MLPClassifier(4, 3, hidden_sizes=(7,), seed=0)
        with pytest.raises(ModelError):
            model.load_state_dict(other.state_dict())
