"""Tests for the Figure 5 training loop wrapper."""

from __future__ import annotations

import pytest

from repro import active_session
from repro.ml.dataset import train_test_split
from repro.ml.train import TrainingConfig, make_synthetic_classification, train_classifier


@pytest.fixture()
def data():
    dataset = make_synthetic_classification(samples=200, features=8, classes=3, seed=1)
    return train_test_split(dataset, test_fraction=0.25, seed=1)


class TestSyntheticData:
    def test_shapes_and_determinism(self):
        a = make_synthetic_classification(samples=50, features=5, classes=2, seed=9)
        b = make_synthetic_classification(samples=50, features=5, classes=2, seed=9)
        assert a.X.shape == (50, 5)
        assert (a.X == b.X).all()
        assert set(a.y.tolist()) <= {0, 1}


class TestUninstrumentedTraining:
    def test_learns_the_synthetic_task(self, data):
        train_data, test_data = data
        result = train_classifier(train_data, test_data, TrainingConfig(epochs=6, lr=5e-3), use_flor_args=False)
        assert result.final_accuracy > 0.8
        assert len(result.losses) == 6 * len(list(range(0, len(train_data), 32)))
        assert len(result.accuracies) == 6

    def test_sgd_option(self, data):
        train_data, test_data = data
        result = train_classifier(
            train_data, test_data, TrainingConfig(epochs=4, lr=0.1, optimizer="sgd"), use_flor_args=False
        )
        assert result.final_accuracy > 0.6


class TestInstrumentedTraining:
    def test_flor_records_loss_acc_recall_and_hyperparameters(self, data, session):
        train_data, test_data = data
        with active_session(session):
            result = train_classifier(train_data, test_data, TrainingConfig(epochs=3, lr=5e-3))
        frame = session.dataframe("acc", "recall")
        assert len(frame) == 3  # one row per epoch
        assert frame["acc"].to_list()[-1] == pytest.approx(result.final_accuracy)
        losses = session.dataframe("loss")
        assert len(losses) == len(result.losses)
        hyper = session.dataframe("epochs", "lr", "hidden", "batch_size", "seed")
        assert hyper.row(0)["epochs"] == 3

    def test_checkpoints_saved_during_instrumented_run(self, data, session):
        train_data, test_data = data
        with active_session(session):
            train_classifier(train_data, test_data, TrainingConfig(epochs=3, lr=5e-3))
        assert session.checkpoints.saved >= 1
        keys = session.objects.list_keys(session.projid)
        assert any(name.startswith("ckpt::") for *_rest, name in keys)

    def test_cli_args_override_config(self, data, make_session):
        train_data, test_data = data
        session = make_session("cli", default_filename="train.py", cli_args={"epochs": 2, "hidden": 8})
        with active_session(session):
            result = train_classifier(train_data, test_data, TrainingConfig(epochs=10, hidden=64))
        assert len(result.accuracies) == 2
        assert result.model.hidden_sizes == (8,)
