"""Tests for datasets and mini-batch loading."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.ml.dataset import DataLoader, Dataset, train_test_split


@pytest.fixture()
def dataset():
    rng = np.random.default_rng(0)
    return Dataset(rng.normal(size=(20, 4)), rng.integers(0, 3, size=20))


class TestDataset:
    def test_basic_properties(self, dataset):
        assert len(dataset) == 20
        assert dataset.num_features == 4
        assert dataset.num_classes == 3

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ModelError):
            Dataset(np.zeros((3,)), np.zeros(3))
        with pytest.raises(ModelError):
            Dataset(np.zeros((3, 2)), np.zeros((3, 2)))
        with pytest.raises(ModelError):
            Dataset(np.zeros((3, 2)), np.zeros(4))

    def test_subset_and_shuffle_preserve_pairing(self, dataset):
        shuffled = dataset.shuffled(seed=1)
        assert len(shuffled) == len(dataset)
        # Every (row, label) pair in the shuffle exists in the original.
        original = {(tuple(x), y) for x, y in zip(dataset.X, dataset.y)}
        assert all((tuple(x), y) in original for x, y in zip(shuffled.X, shuffled.y))

    def test_empty_num_classes(self):
        data = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int))
        assert data.num_classes == 0


class TestSplit:
    def test_split_sizes(self, dataset):
        train, test = train_test_split(dataset, test_fraction=0.25, seed=0)
        assert len(train) + len(test) == len(dataset)
        assert len(test) == 5

    def test_split_is_deterministic_per_seed(self, dataset):
        a_train, _ = train_test_split(dataset, seed=3)
        b_train, _ = train_test_split(dataset, seed=3)
        assert np.array_equal(a_train.X, b_train.X)

    def test_invalid_fraction_rejected(self, dataset):
        with pytest.raises(ModelError):
            train_test_split(dataset, test_fraction=0.0)
        with pytest.raises(ModelError):
            train_test_split(dataset, test_fraction=1.5)


class TestDataLoader:
    def test_batch_count_and_sizes(self, dataset):
        loader = DataLoader(dataset, batch_size=6)
        batches = list(loader)
        assert len(loader) == 4
        assert [len(x) for x, _ in batches] == [6, 6, 6, 2]

    def test_batches_cover_all_samples(self, dataset):
        loader = DataLoader(dataset, batch_size=7)
        total = sum(len(y) for _, y in loader)
        assert total == len(dataset)

    def test_shuffle_changes_order_but_not_content(self, dataset):
        plain = np.concatenate([y for _, y in DataLoader(dataset, batch_size=5)])
        shuffled = np.concatenate([y for _, y in DataLoader(dataset, batch_size=5, shuffle=True, seed=1)])
        assert sorted(plain.tolist()) == sorted(shuffled.tolist())

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ModelError):
            DataLoader(dataset, batch_size=0)


@given(
    samples=st.integers(min_value=1, max_value=64),
    batch=st.integers(min_value=1, max_value=16),
)
def test_property_loader_covers_every_sample_exactly_once(samples, batch):
    data = Dataset(np.arange(samples * 2, dtype=float).reshape(samples, 2), np.zeros(samples, dtype=int))
    loader = DataLoader(data, batch_size=batch)
    seen = np.concatenate([x[:, 0] for x, _ in loader])
    assert sorted(seen.tolist()) == sorted(data.X[:, 0].tolist())
