"""Tests for classification metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.ml.metrics import accuracy, confusion_matrix, f1_score, precision, recall


class TestAccuracy:
    def test_perfect_and_zero(self):
        assert accuracy([0, 1, 2], [0, 1, 2]) == 1.0
        assert accuracy([0, 0, 0], [1, 1, 1]) == 0.0

    def test_partial(self):
        assert accuracy([0, 1, 1, 0], [0, 1, 0, 1]) == 0.5

    def test_shape_mismatch_and_empty(self):
        with pytest.raises(ModelError):
            accuracy([0, 1], [0])
        with pytest.raises(ModelError):
            accuracy([], [])


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert matrix.tolist() == [[1, 1], [0, 2]]

    def test_explicit_num_classes_pads(self):
        matrix = confusion_matrix([0, 0], [0, 0], num_classes=3)
        assert matrix.shape == (3, 3)


class TestRecallPrecision:
    def test_recall_for_positive_class(self):
        # 2 positives, 1 found.
        assert recall([1, 1, 0, 0], [1, 0, 0, 0], positive_class=1) == 0.5

    def test_recall_macro_average(self):
        value = recall([0, 0, 1, 1], [0, 1, 1, 1])
        assert value == pytest.approx((0.5 + 1.0) / 2)

    def test_recall_with_unseen_positive_class(self):
        # Degenerate case from the pipeline: no positives in the test split.
        assert recall([0, 0], [0, 0], positive_class=1) == 0.0

    def test_precision_for_positive_class(self):
        # Predicted positive twice, one correct.
        assert precision([1, 0, 0], [1, 1, 0], positive_class=1) == 0.5

    def test_precision_macro_skips_never_predicted_classes(self):
        # Class 1 is never predicted, so only class 0 (precision 0.5) contributes.
        assert precision([0, 1], [0, 0]) == pytest.approx(0.5)

    def test_f1_balances_precision_and_recall(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 1, 0]
        p = precision(y_true, y_pred, positive_class=1)
        r = recall(y_true, y_pred, positive_class=1)
        assert f1_score(y_true, y_pred, positive_class=1) == pytest.approx(2 * p * r / (p + r))

    def test_f1_zero_when_nothing_predicted(self):
        assert f1_score([1, 1], [0, 0], positive_class=1) == 0.0


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50))
def test_property_accuracy_of_self_is_one(labels):
    assert accuracy(labels, labels) == 1.0
    assert recall(labels, labels) == 1.0
    assert precision(labels, labels) == 1.0


@given(
    st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=50),
    st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=50),
)
def test_property_confusion_matrix_total_equals_sample_count(y_true, y_pred):
    n = min(len(y_true), len(y_pred))
    y_true, y_pred = y_true[:n], y_pred[:n]
    matrix = confusion_matrix(np.array(y_true), np.array(y_pred))
    assert matrix.sum() == n
