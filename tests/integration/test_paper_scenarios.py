"""Integration tests that assert the paper's figures behave as described.

Each test class corresponds to one figure of the paper (see DESIGN.md's
experiment index); the benchmarks regenerate the figures quantitatively,
these tests pin down the qualitative behaviour.
"""

from __future__ import annotations

import pytest

from repro import HindsightEngine, ReplayPlan, active_session, flor
from repro.docs.corpus import generate_corpus
from repro.docs.featurize import featurize_corpus
from repro.ml.dataset import train_test_split
from repro.ml.train import TrainingConfig, make_synthetic_classification, train_classifier
from repro.relational.queries import git_view, latest
from repro.workloads import VersionedScriptWorkload


class TestFigure3Featurization:
    """Nested document/page loops with per-page feature logging."""

    def test_pivoted_view_matches_figure(self, free_session):
        corpus = generate_corpus(num_documents=3, min_pages=2, max_pages=4, seed=7)
        with active_session(free_session):
            list(featurize_corpus(corpus))
            flor.commit("featurize")
        frame = free_session.dataframe("text_src", "headings", "page_numbers")
        # One row per (document, page), with both dimension columns present.
        assert len(frame) == corpus.total_pages
        assert {"document", "document_value", "page", "page_value"} <= set(frame.columns)
        assert set(frame["text_src"].unique()) <= {"OCR", "TXT"}
        # Every document contributes exactly its page count.
        for document in corpus:
            rows = frame[frame.document_value == document.name]
            assert len(rows) == len(document)


class TestFigure5Training:
    """Training with flor.arg / flor.checkpointing / per-epoch metrics."""

    def test_training_run_is_fully_queryable(self, free_session):
        data = make_synthetic_classification(samples=150, features=8, classes=2, seed=3)
        train_data, test_data = train_test_split(data, seed=3)
        with active_session(free_session):
            train_classifier(train_data, test_data, TrainingConfig(epochs=3, lr=5e-3))
            flor.commit("training")
        metrics = free_session.dataframe("acc", "recall")
        assert len(metrics) == 3
        hyper = free_session.dataframe("hidden", "epochs", "batch_size", "lr", "seed")
        assert len(hyper) == 1
        # Checkpoints exist for replay.
        assert any(
            name.startswith("ckpt::")
            for *_ignored, name in free_session.objects.list_keys(free_session.projid)
        )

    def test_best_checkpoint_selection_like_infer_py(self, free_session):
        data = make_synthetic_classification(samples=150, features=8, classes=2, seed=3)
        train_data, test_data = train_test_split(data, seed=3)
        with active_session(free_session):
            for lr in (1e-4, 5e-3):
                train_classifier(train_data, test_data, TrainingConfig(epochs=2, lr=lr))
                flor.commit(f"run lr={lr}")
            frame = flor.dataframe("acc", "recall")
        # infer.py's pattern: pick the run/epoch with the highest recall.
        best = max(frame.to_records(), key=lambda row: (row["recall"] or 0, row["acc"] or 0))
        assert best["recall"] == max(r["recall"] for r in frame.to_records())


class TestSection2Hindsight:
    """The multiversion hindsight logging walk-through of Section 2."""

    def test_log_now_get_data_from_the_past(self, free_session):
        workload = VersionedScriptWorkload(versions=3, epochs=4, steps=2)
        workload.record_all_versions(free_session)
        engine = HindsightEngine(free_session)
        report = engine.backfill("train.py", new_source=workload.hindsight_source())
        assert report.versions_replayed == 3
        frame = free_session.dataframe("loss", "weight")
        assert not any(row["weight"] is None for row in frame.to_records())

    def test_differential_replay_is_cheaper_than_full(self, free_session):
        workload = VersionedScriptWorkload(versions=2, epochs=8, steps=2)
        workload.record_all_versions(free_session)
        engine = HindsightEngine(free_session)
        full = engine.backfill("train.py", new_source=workload.hindsight_source())
        focused = engine.backfill(
            "train.py",
            new_source=workload.hindsight_source(),
            plan=ReplayPlan.only(epoch=[workload.epochs - 1]),
        )
        assert focused.iterations_executed < full.iterations_executed


class TestFigure1ChangeContext:
    """ts2vid + the virtual git table tie runs to code versions."""

    def test_every_epoch_maps_to_a_version_with_source(self, free_session):
        workload = VersionedScriptWorkload(versions=3, epochs=2, steps=1)
        vids = workload.record_all_versions(free_session)
        epochs = free_session.ts2vid.all(free_session.projid)
        assert [e.vid for e in epochs] == vids
        frame = git_view(free_session.repository)
        assert set(frame["vid"].unique()) == set(vids)
        # Each version's stored source differs (the paper's change context).
        contents = {row["vid"]: row["contents"] for row in frame.to_records()}
        assert len(set(contents.values())) == 3


class TestFigure6FeedbackQuery:
    """The get_colors() query pattern of Figure 6."""

    def test_latest_plus_fallback_logic(self, free_session):
        session = free_session
        # Featurization for one document of 4 pages.
        for doc in session.loop("document", ["d.pdf"], filename="featurize.py"):
            for page in session.loop("page", range(4), filename="featurize.py"):
                session.log("first_page", 1 if page in (0, 2) else 0, filename="featurize.py")
        session.commit("featurize")
        infer = session.dataframe("first_page", "page_color")
        infer = latest(infer[infer.document_value == "d.pdf"])
        assert infer.page_color.isna().any()
        color = infer["first_page"].astype(int).cumsum()
        infer["page_color"] = (color - 1).to_list()
        assert infer["page_color"].to_list() == [0, 0, 1, 1]
