"""Integration tests: the full PDF-parser pipeline (Figures 2 and 4)."""

from __future__ import annotations

import pytest

from repro.mlops import FeatureStore, LabelStore, MetricRegistry
from repro.pipeline import PdfPipeline
from repro.workloads import PipelineWorkload


@pytest.fixture()
def pipeline(make_session):
    session = make_session("pipeline")
    pipeline = PdfPipeline(session, documents=4, max_pages=5, epochs=2, seed=1)
    pipeline.run_all()
    return pipeline


class TestEndToEnd:
    def test_every_stage_leaves_context_behind(self, pipeline):
        session = pipeline.session
        names = set(session.logs.distinct_names(session.projid))
        # demux, featurize, train and infer all contributed log names.
        assert {"num_documents", "first_page", "acc", "recall", "loss", "pred_first_page"} <= names

    def test_featurization_covers_every_page(self, pipeline):
        frame = pipeline.session.dataframe("first_page")
        assert len(frame) == pipeline.state.corpus.total_pages

    def test_training_metrics_one_row_per_epoch(self, pipeline):
        frame = pipeline.session.dataframe("acc", "recall")
        assert len(frame) == pipeline.epochs

    def test_inference_predictions_logged_with_provenance(self, pipeline):
        frame = pipeline.session.dataframe("pred_first_page")
        assert len(frame) == len(pipeline.state.predictions)
        assert "document_value" in frame.columns

    def test_model_registry_selects_a_checkpoint(self, pipeline):
        best = pipeline.registry.best("recall")
        assert best is not None
        loaded = pipeline.registry.load_best("recall")
        assert loaded is not None

    def test_commit_produced_a_version(self, pipeline):
        assert len(pipeline.session.ts2vid.all(pipeline.session.projid)) >= 1


class TestFeedbackLoop:
    def test_feedback_round_updates_served_colors(self, pipeline):
        app = pipeline.state.app
        name = pipeline.state.corpus.document_names()[0]
        corrected = list(range(len(pipeline.state.corpus.get(name))))
        saved = pipeline.feedback_round({name: corrected})
        assert saved == len(corrected)
        assert app.get_colors(name) == corrected

    def test_feedback_visible_to_label_store_with_provenance(self, pipeline):
        name = pipeline.state.corpus.document_names()[1]
        pipeline.feedback_round({name: [0, 0, 1]})
        store = LabelStore(pipeline.session, filename="app.py")
        labels = [r for r in store.labels("page_color") if r.entity == name]
        assert labels
        assert all(label.source == "human" for label in labels)

    def test_retraining_after_feedback_adds_a_run(self, pipeline):
        registry = MetricRegistry(pipeline.session)
        runs_before = len(registry.runs("acc"))
        pipeline.feedback_round(
            {pipeline.state.corpus.document_names()[0]: [0, 1, 2]}
        )
        pipeline.train()
        pipeline.session.commit("retrain")
        assert len(registry.runs("acc")) == runs_before + 1


class TestRolesOverOnePipeline:
    def test_feature_store_view_of_pipeline_output(self, pipeline):
        store = FeatureStore(pipeline.session)
        frame = store.materialize(["first_page", "text_src"])
        assert len(frame) == pipeline.state.corpus.total_pages
        assert set(store.entities(["first_page"])) == set(pipeline.state.corpus.document_names())

    def test_metric_registry_summary(self, pipeline):
        registry = MetricRegistry(pipeline.session)
        summary = registry.summary("acc")
        assert summary["runs"] >= 1
        assert summary["points"] >= pipeline.epochs


class TestMakeDrivenExecution:
    def test_incremental_rebuild_after_stage_change(self, make_session, tmp_path):
        session = make_session("makepipe")
        workload = PipelineWorkload(documents=3, max_pages=4, epochs=1)
        executor, _pipeline = workload.build_executor(session, tmp_path / "build")
        first = executor.build("run")
        assert len(first.executed) == 5
        second = executor.build("run")
        assert second.executed == []
        # Touch the featurize stage's input: only downstream stages re-run.
        import time

        time.sleep(0.01)
        (tmp_path / "build" / "featurize.py").write_text("# changed\n")
        third = executor.build("run")
        assert "featurize" in third.executed
        assert "process_pdfs" not in third.executed
        assert "train" in third.executed and "infer" in third.executed

    def test_build_deps_recorded_per_version(self, make_session, tmp_path):
        session = make_session("makedeps")
        workload = PipelineWorkload(documents=3, max_pages=4, epochs=1)
        executor, _pipeline = workload.build_executor(session, tmp_path / "b")
        report = executor.build("run")
        rows = session.build_deps.by_vid(report.vid)
        assert {r.target for r in rows} == {"process_pdfs", "featurize", "train", "infer", "run"}
