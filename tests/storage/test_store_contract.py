"""Backend-parameterized conformance suite for the storage protocols.

Every backend — SQLite file, SQLite memory, snapshot-replicated, directory
blob store, dict blob store, tiered blob store (hot and archived) — must
prove the same :mod:`repro.storage.protocols` semantics:

* ``transaction()`` rolls back every statement on an exception;
* ``write_version`` is monotonic, advances on committed writes, and never
  advances on reads;
* blob ``put`` is idempotent and ``get`` round-trips bytes exactly.

The replicated backend runs with ``max_staleness=0`` so every read is
forced fresh — that mode degenerates to read-your-writes, which is what
lets it pass the same assertions as the single-handle backends.
"""

from __future__ import annotations

import pytest

from repro.errors import DatabaseError, ObjectNotFoundError
from repro.relational.database import Database
from repro.storage import (
    BlobStore,
    MemoryBlobStore,
    MemoryRelationalStore,
    RelationalStore,
    ReplicatedDatabase,
    TieredBlobStore,
)
from repro.versioning.objects import ObjectStore, hash_bytes

INSERT = (
    "INSERT INTO logs (projid, tstamp, filename, ctx_id, value_name, value, value_type)"
    " VALUES ('p', 't0', 'f.py', 0, ?, ?, 1)"
)

RELATIONAL_BACKENDS = ("sqlite-file", "sqlite-memory", "replicated")
BLOB_BACKENDS = ("directory", "memory", "tiered-hot", "tiered-archived")


class _EagerArchiveStore(TieredBlobStore):
    """A tiered store that archives every blob the moment it is put.

    Conformance double: proves that blobs served from pack files honour the
    exact same protocol semantics as hot-path blobs.
    """

    def put(self, data: bytes) -> str:
        object_id = super().put(data)
        self.archive([object_id])
        return object_id


@pytest.fixture(params=RELATIONAL_BACKENDS)
def store(request, tmp_path):
    """One RelationalStore per backend; closed (and primaries released) after."""
    if request.param == "sqlite-file":
        backend = Database(tmp_path / "contract.db")
        yield backend
        backend.close()
    elif request.param == "sqlite-memory":
        backend = MemoryRelationalStore()
        yield backend
        backend.close()
    else:
        primary = Database(tmp_path / "primary.db")
        backend = ReplicatedDatabase(primary, replicas=2, max_staleness=0)
        yield backend
        backend.close()
        primary.close()


@pytest.fixture(params=BLOB_BACKENDS)
def blobs(request, tmp_path):
    if request.param == "directory":
        yield ObjectStore(tmp_path / "objects")
    elif request.param == "memory":
        yield MemoryBlobStore()
    elif request.param == "tiered-hot":
        yield TieredBlobStore(ObjectStore(tmp_path / "objects"), tmp_path / "archive")
    else:
        yield _EagerArchiveStore(
            ObjectStore(tmp_path / "objects"), tmp_path / "archive"
        )


# ------------------------------------------------------------- relational
class TestRelationalContract:
    def test_satisfies_protocol(self, store):
        assert isinstance(store, RelationalStore)

    def test_transaction_commits(self, store):
        with store.transaction() as conn:
            conn.execute(INSERT, ("acc", "0.9"))
            conn.execute(INSERT, ("loss", "0.1"))
        assert store.count("logs") == 2

    def test_transaction_rolls_back_every_statement(self, store):
        with pytest.raises(RuntimeError):
            with store.transaction() as conn:
                conn.execute(INSERT, ("acc", "0.9"))
                conn.execute(INSERT, ("loss", "0.1"))
                raise RuntimeError("abort")
        assert store.count("logs") == 0

    def test_write_version_monotonic_and_advances_on_writes(self, store):
        v0 = store.write_version
        store.execute(INSERT, ("acc", "0.9"))
        v1 = store.write_version
        assert v1 > v0
        store.executemany(
            "INSERT INTO logs (projid, tstamp, filename, ctx_id, value_name, value, value_type)"
            " VALUES ('p', 't0', 'f.py', 0, ?, ?, 1)",
            [("a", "1"), ("b", "2")],
        )
        assert store.write_version > v1

    def test_reads_do_not_advance_write_version(self, store):
        store.execute(INSERT, ("acc", "0.9"))
        version = store.write_version
        assert store.query("SELECT value_name, value FROM logs") == [("acc", "0.9")]
        assert store.query_one("SELECT COUNT(*) FROM logs") == (1,)
        assert store.count("logs") == 1
        assert store.write_version == version

    def test_rollback_does_not_lose_prior_commits(self, store):
        store.execute(INSERT, ("keep", "1"))
        with pytest.raises(RuntimeError):
            with store.transaction() as conn:
                conn.execute(INSERT, ("drop", "2"))
                raise RuntimeError("abort")
        assert store.query("SELECT value_name FROM logs") == [("keep",)]

    def test_query_one_empty(self, store):
        assert store.query_one("SELECT value FROM logs WHERE value_name = 'nope'") is None

    def test_count_rejects_unknown_table(self, store):
        with pytest.raises(DatabaseError):
            store.count("not_a_table; DROP TABLE logs")


# ------------------------------------------------------------------ blobs
class TestBlobContract:
    def test_satisfies_protocol(self, blobs):
        assert isinstance(blobs, BlobStore)

    def test_round_trip(self, blobs):
        object_id = blobs.put(b"hello world")
        assert object_id == hash_bytes(b"hello world")
        assert blobs.get(object_id) == b"hello world"
        assert blobs.get_text(object_id) == "hello world"

    def test_put_is_idempotent(self, blobs):
        first = blobs.put(b"same bytes")
        second = blobs.put(b"same bytes")
        assert first == second
        assert len(blobs) == 1

    def test_exists_and_contains(self, blobs):
        object_id = blobs.put(b"present")
        assert blobs.exists(object_id)
        assert object_id in blobs
        missing = hash_bytes(b"absent")
        assert not blobs.exists(missing)
        assert missing not in blobs

    def test_malformed_ids_are_absent_not_errors(self, blobs):
        assert not blobs.exists("not-hex!")
        assert not blobs.exists("ab")  # too short for the fan-out split

    def test_get_missing_raises(self, blobs):
        with pytest.raises(ObjectNotFoundError):
            blobs.get(hash_bytes(b"never stored"))

    def test_ids_enumerates_everything(self, blobs):
        stored = {blobs.put(f"blob {i}".encode()) for i in range(5)}
        assert set(blobs.ids()) == stored
        assert len(blobs) == 5

    def test_text_round_trip_unicode(self, blobs):
        object_id = blobs.put_text("héllo ∆ wörld")
        assert blobs.get_text(object_id) == "héllo ∆ wörld"

    def test_delete(self, blobs):
        object_id = blobs.put(b"to delete")
        assert blobs.delete(object_id)
        assert not blobs.exists(object_id)
        assert not blobs.delete(object_id)
