"""Cold blob tiering: archive packs, the warm LRU cache, epoch selection."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObjectNotFoundError
from repro.storage.tiering import TieredBlobStore, select_cold_ids
from repro.versioning.objects import ObjectStore, hash_bytes


@pytest.fixture()
def tiered(tmp_path):
    hot = ObjectStore(tmp_path / "objects")
    return TieredBlobStore(hot, tmp_path / "archive", cache_bytes=1024)


class TestArchive:
    def test_archive_moves_blobs_off_the_hot_path(self, tiered):
        ids = [tiered.put(f"blob {i}".encode()) for i in range(3)]
        assert tiered.archive(ids) == 3
        for i, object_id in enumerate(ids):
            assert not tiered.hot.exists(object_id)
            assert tiered.exists(object_id)
            assert tiered.get(object_id) == f"blob {i}".encode()

    def test_archive_is_idempotent(self, tiered):
        object_id = tiered.put(b"once")
        assert tiered.archive([object_id]) == 1
        assert tiered.archive([object_id]) == 0
        assert tiered.archive([hash_bytes(b"never stored")]) == 0

    def test_each_pass_appends_a_new_pack(self, tiered, tmp_path):
        a = tiered.put(b"first pass")
        tiered.archive([a])
        b = tiered.put(b"second pass")
        tiered.archive([b])
        packs = sorted(p.name for p in (tmp_path / "archive").glob("pack-*.bin"))
        assert packs == ["pack-0000.bin", "pack-0001.bin"]
        assert tiered.get(a) == b"first pass"
        assert tiered.get(b) == b"second pass"

    def test_index_survives_reopen(self, tiered, tmp_path):
        object_id = tiered.put(b"durable")
        tiered.archive([object_id])
        reopened = TieredBlobStore(ObjectStore(tmp_path / "objects"), tmp_path / "archive")
        assert reopened.get(object_id) == b"durable"
        assert object_id in set(reopened.ids())

    def test_no_archive_dir_until_first_archive(self, tiered, tmp_path):
        tiered.put(b"hot only")
        assert not (tmp_path / "archive").exists()

    def test_put_of_archived_bytes_is_noop(self, tiered):
        object_id = tiered.put(b"already cold")
        tiered.archive([object_id])
        assert tiered.put(b"already cold") == object_id
        assert not tiered.hot.exists(object_id)  # did not resurrect a hot copy

    def test_verify_detects_intact_archive(self, tiered):
        ids = [tiered.put(f"v{i}".encode()) for i in range(4)]
        tiered.archive(ids)
        assert tiered.verify() == []

    def test_verify_detects_corruption(self, tiered, tmp_path):
        object_id = tiered.put(b"will corrupt")
        tiered.archive([object_id])
        pack = next((tmp_path / "archive").glob("pack-*.bin"))
        pack.write_bytes(b"X" * len(b"will corrupt"))
        tiered.cache.clear()
        assert tiered.verify() == [object_id]


class TestWarmCache:
    def test_repeat_reads_hit_the_cache(self, tiered):
        object_id = tiered.put(b"cache me")
        tiered.archive([object_id])
        tiered.get(object_id)  # cold: seeks into the pack
        tiered.get(object_id)  # warm
        tiered.get(object_id)  # warm
        stats = tiered.stats()
        assert stats["cache_hits"] == 2
        assert stats["cache_misses"] == 1

    def test_lru_evicts_over_budget(self, tmp_path):
        tiered = TieredBlobStore(
            ObjectStore(tmp_path / "objects"), tmp_path / "archive", cache_bytes=100
        )
        ids = [tiered.put(bytes([i]) * 60) for i in range(3)]
        tiered.archive(ids)
        tiered.get(ids[0])
        tiered.get(ids[1])  # evicts ids[0] (60 + 60 > 100)
        tiered.get(ids[0])  # miss again
        assert tiered.stats()["cache_misses"] == 3

    def test_oversized_blob_bypasses_cache(self, tmp_path):
        tiered = TieredBlobStore(
            ObjectStore(tmp_path / "objects"), tmp_path / "archive", cache_bytes=10
        )
        object_id = tiered.put(b"z" * 100)
        tiered.archive([object_id])
        tiered.get(object_id)
        tiered.get(object_id)
        assert tiered.stats()["cache_entries"] == 0


class TestDeleteAndIds:
    def test_delete_archived_blob(self, tiered):
        object_id = tiered.put(b"cold delete")
        tiered.archive([object_id])
        assert tiered.delete(object_id)
        assert not tiered.exists(object_id)
        with pytest.raises(ObjectNotFoundError):
            tiered.get(object_id)

    def test_ids_spans_both_tiers_without_duplicates(self, tiered):
        cold = tiered.put(b"cold")
        hot = tiered.put(b"hot")
        tiered.archive([cold])
        assert sorted(tiered.ids()) == sorted([cold, hot])
        assert len(tiered) == 2

    def test_index_file_is_valid_json(self, tiered, tmp_path):
        object_id = tiered.put(b"indexed")
        tiered.archive([object_id])
        index = json.loads((tmp_path / "archive" / "index.json").read_text())
        assert index[object_id]["pack"] == "pack-0000.bin"
        assert index[object_id]["length"] == len(b"indexed")


class TestSelectColdIds:
    def _commit(self, **files):
        return {"files": files}

    def test_newest_epochs_stay_hot(self):
        commits = [
            self._commit(a="id1"),
            self._commit(a="id2"),
            self._commit(a="id3"),
        ]
        hot, cold = select_cold_ids(commits, keep_epochs=1)
        assert hot == {"id3"}
        assert cold == {"id1", "id2"}

    def test_shared_blobs_never_go_cold(self):
        commits = [
            self._commit(a="shared", b="old"),
            self._commit(a="shared", b="new"),
        ]
        hot, cold = select_cold_ids(commits, keep_epochs=1)
        assert "shared" in hot
        assert cold == {"old"}

    def test_keep_zero_archives_everything(self):
        commits = [self._commit(a="id1"), self._commit(a="id2")]
        hot, cold = select_cold_ids(commits, keep_epochs=0)
        assert hot == set()
        assert cold == {"id1", "id2"}

    def test_keep_more_than_history_archives_nothing(self):
        commits = [self._commit(a="id1")]
        hot, cold = select_cold_ids(commits, keep_epochs=5)
        assert hot == {"id1"}
        assert cold == set()

    def test_accepts_commit_objects(self):
        class C:
            def __init__(self, files):
                self.files = files

        hot, cold = select_cold_ids([C({"a": "x"}), C({"a": "y"})], keep_epochs=1)
        assert hot == {"y"} and cold == {"x"}

    def test_negative_keep_rejected(self):
        with pytest.raises(ValueError):
            select_cold_ids([], keep_epochs=-1)
