"""ObjectStore durability regressions: tmp-file races and crash debris."""

from __future__ import annotations

import threading

import pytest

from repro.versioning.objects import ObjectStore, hash_bytes


class TestConcurrentPut:
    def test_racing_puts_of_same_object(self, tmp_path):
        """Concurrent puts of identical bytes must not corrupt the object.

        The old implementation staged every writer of one object at the same
        ``<object>.tmp`` path, so writer A's atomic replace could consume
        writer B's half-written file.  With unique per-writer tmp names each
        replace publishes a complete copy.
        """
        store = ObjectStore(tmp_path / "objects")
        payload = b"x" * 64_000
        barrier = threading.Barrier(8)
        errors: list[BaseException] = []

        def writer() -> None:
            try:
                barrier.wait()
                for _ in range(20):
                    store.put(payload)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        object_id = hash_bytes(payload)
        assert store.get(object_id) == payload
        assert hash_bytes(store.get(object_id)) == object_id
        # No staging debris left behind.
        assert list((tmp_path / "objects").glob("??/*.tmp")) == []

    def test_racing_puts_of_distinct_objects(self, tmp_path):
        store = ObjectStore(tmp_path / "objects")
        barrier = threading.Barrier(4)
        results: list[str] = []
        lock = threading.Lock()

        def writer(worker: int) -> None:
            barrier.wait()
            ids = [store.put(f"worker {worker} blob {i}".encode()) for i in range(25)]
            with lock:
                results.extend(ids)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(set(results)) == 100
        for object_id in results:
            assert store.exists(object_id)


class TestStaleTmpSweep:
    def test_init_sweeps_planted_tmp_files(self, tmp_path):
        """A crashed writer's ``*.tmp`` is cleaned up on the next open."""
        root = tmp_path / "objects"
        store = ObjectStore(root)
        object_id = store.put(b"real blob")
        prefix_dir = root / object_id[:2]
        stale = prefix_dir / f"{object_id[2:]}.deadbeef.tmp"
        stale.write_bytes(b"half-written garbage")

        reopened = ObjectStore(root)
        assert not stale.exists()
        assert reopened.get(object_id) == b"real blob"

    def test_ids_excludes_tmp_files_defensively(self, tmp_path):
        """Even an unswept tmp file never shows up as an object id."""
        root = tmp_path / "objects"
        store = ObjectStore(root)
        object_id = store.put(b"real blob")
        # Plant debris *after* init so the sweep has not seen it.
        (root / object_id[:2] / "0123456789.tmp").write_bytes(b"junk")
        assert list(store.ids()) == [object_id]
        assert len(store) == 1

    def test_ids_ignores_non_fanout_directories(self, tmp_path):
        """Bookkeeping dirs (e.g. the tiering archive) never pollute ids()."""
        root = tmp_path / "objects"
        store = ObjectStore(root)
        object_id = store.put(b"real blob")
        (root / "archive").mkdir()
        (root / "archive" / "pack-0000.bin").write_bytes(b"packed")
        (root / "zz-not-hex").mkdir()
        (root / "zz-not-hex" / "file").write_bytes(b"x")
        assert list(store.ids()) == [object_id]

    def test_sweep_tolerates_clean_store(self, tmp_path):
        store = ObjectStore(tmp_path / "objects")
        assert list(store.ids()) == []


class TestDelete:
    def test_delete_removes_object_and_empty_fanout_dir(self, tmp_path):
        root = tmp_path / "objects"
        store = ObjectStore(root)
        object_id = store.put(b"bye")
        assert store.delete(object_id)
        assert not store.exists(object_id)
        assert not (root / object_id[:2]).exists()

    def test_delete_missing_is_false(self, tmp_path):
        store = ObjectStore(tmp_path / "objects")
        assert not store.delete(hash_bytes(b"never"))
        assert not store.delete("not-hex!")
