"""Service-level behaviour of the pluggable backends: replicas, memory, gc."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.config import ProjectConfig
from repro.core.session import Session
from repro.service import FlorService
from repro.service.pool import DatabasePool
from repro.webapp import TestClient


def _service(tmp_path, **kwargs):
    service = FlorService(tmp_path / "root", flush_mode="sync", **kwargs)
    return service, TestClient(service.app())


def _append(client, name, records):
    response = client.post(
        f"/projects/{name}/logs",
        {"records": [{"name": n, "value": v} for n, v in records]},
    )
    assert response.status == 202
    return response


class TestReplicaRouting:
    def test_replica_reads_carry_a_watermark(self, tmp_path):
        service, client = _service(tmp_path, replicas=2, replica_staleness=0.0)
        try:
            _append(client, "alpha", [("acc", 0.9)])
            client.post("/projects/alpha/commit", {})  # flushes the queue
            response = client.get("/projects/alpha/dataframe?names=acc")
            body = response.json()
            assert response.status == 200
            assert body["rows"] == 1
            assert body["watermark"] == 1
        finally:
            service.close()

    def test_replica_reads_are_bounded_stale_not_read_your_writes(self, tmp_path):
        # A huge staleness bound plus no flush: the replica legitimately
        # serves the pre-write snapshot, and the watermark says so.
        service, client = _service(tmp_path, replicas=1, replica_staleness=3600.0)
        try:
            _append(client, "alpha", [("acc", 1)])
            first = client.get("/projects/alpha/dataframe?names=acc").json()
            assert first["watermark"] == 0  # queued write not flushed yet
            assert first["rows"] == 0
            # Primary read flushes and sees the write immediately.
            primary = client.get("/projects/alpha/dataframe?names=acc&primary=1").json()
            assert primary["rows"] == 1
            assert "watermark" not in primary
        finally:
            service.close()

    def test_sql_routes_to_replicas_with_watermark(self, tmp_path):
        service, client = _service(tmp_path, replicas=2, replica_staleness=0.0)
        try:
            _append(client, "alpha", [("acc", i) for i in range(4)])
            client.get("/projects/alpha/dataframe?names=acc&primary=1")  # flush
            response = client.get(
                "/projects/alpha/sql?q=SELECT COUNT(*) AS n FROM logs"
            )
            body = response.json()
            assert body["records"] == [{"n": 4}]
            assert body["watermark"] == 4
        finally:
            service.close()

    def test_replica_cache_invalidated_after_sync(self, tmp_path):
        """Regression: SQLite's backup API bypasses the replica's
        write_version, so without the on_sync hook the per-replica pivot
        cache would serve the old materialized view forever."""
        service, client = _service(tmp_path, replicas=1, replica_staleness=0.0)
        try:
            _append(client, "alpha", [("acc", 1)])
            client.post("/projects/alpha/commit", {})
            assert client.get("/projects/alpha/dataframe?names=acc").json()["rows"] == 1
            _append(client, "alpha", [("acc", 2)])
            client.post("/projects/alpha/commit", {})
            body = client.get("/projects/alpha/dataframe?names=acc").json()
            assert body["rows"] == 2
            assert body["watermark"] == 2
        finally:
            service.close()

    def test_stats_surface_replica_counters(self, tmp_path):
        service, client = _service(tmp_path, replicas=2, replica_staleness=0.0)
        try:
            _append(client, "alpha", [("acc", 1)])
            client.get("/projects/alpha/dataframe?names=acc")
            stats = client.get("/projects/alpha/stats").json()
            assert stats["replicas"]["replica_reads"] >= 1
            assert client.get("/service/stats").json()["replicas"] == 2
        finally:
            service.close()


class TestMemoryBackend:
    def test_zero_disk_io(self, tmp_path):
        pool = DatabasePool(tmp_path / "root", backend="memory", flush_mode="sync")
        shard = pool.get("beta")
        shard.session.log("acc", 0.9)
        shard.flush()
        assert shard.session.db.count("logs") == 1
        pool.close()
        assert not (tmp_path / "root").exists()

    def test_eviction_retains_shard_state(self, tmp_path):
        pool = DatabasePool(
            tmp_path / "root", backend="memory", flush_mode="sync", capacity=1
        )
        shard = pool.get("beta")
        shard.session.log("acc", 1)
        shard.flush()
        pool.get("gamma")  # evicts beta (capacity 1)
        reopened = pool.get("beta")
        assert reopened.session.db.count("logs") == 1
        pool.close()

    def test_memory_service_end_to_end(self, tmp_path):
        service, client = _service(tmp_path, backend="memory")
        try:
            _append(client, "beta", [("x", 1), ("y", 2)])
            body = client.get("/projects/beta/dataframe?names=x,y").json()
            assert body["rows"] == 1  # one run context -> one pivot row
            counted = client.get(
                "/projects/beta/sql?q=SELECT COUNT(*) AS n FROM logs"
            ).json()
            assert counted["records"] == [{"n": 2}]
        finally:
            service.close()
        assert not (tmp_path / "root").exists()

    def test_composes_with_replicas(self, tmp_path):
        service, client = _service(tmp_path, backend="memory", replicas=2, replica_staleness=0.0)
        try:
            _append(client, "beta", [("x", 1)])
            client.get("/projects/beta/dataframe?names=x&primary=1")  # flush
            body = client.get("/projects/beta/dataframe?names=x").json()
            assert body["rows"] == 1
            assert body["watermark"] == 1
        finally:
            service.close()

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DatabasePool(tmp_path / "root", backend="papyrus")


class TestGcTierCold:
    def _project_with_epochs(self, tmp_path, epochs=4):
        root = tmp_path / "proj"
        session = Session(ProjectConfig(root, "gcproj"), default_filename="train.py")
        script = root / "train.py"
        vids = []
        for epoch in range(epochs):
            script.write_text(f"print('version {epoch}')\n")
            session.repository.track("train.py")
            session.log("epoch", epoch)
            vids.append(session.commit(f"epoch {epoch}"))
        session.close()
        return root, vids

    def test_gc_archives_cold_blobs_and_history_stays_readable(self, tmp_path, capsys):
        root, vids = self._project_with_epochs(tmp_path, epochs=4)
        assert main(["--project", str(root), "gc", "--tier-cold", "--keep-epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "archived: 3 blob(s)" in out
        # Every historical version — including the archived ones — still reads.
        session = Session(ProjectConfig(root, "gcproj"), default_filename="train.py")
        try:
            for epoch, vid in enumerate(vids):
                assert f"version {epoch}" in session.repository.read_file(vid, "train.py")
        finally:
            session.close()

    def test_dry_run_moves_nothing(self, tmp_path, capsys):
        root, _ = self._project_with_epochs(tmp_path, epochs=3)
        assert main(
            ["--project", str(root), "gc", "--tier-cold", "--keep-epochs", "1", "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "would archive: 2 blob(s)" in out
        assert not (root / ".flor" / "objects" / "archive").exists()

    def test_gc_without_tier_cold_is_a_noop(self, tmp_path, capsys):
        root, _ = self._project_with_epochs(tmp_path, epochs=2)
        assert main(["--project", str(root), "gc"]) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_second_pass_archives_nothing_new(self, tmp_path, capsys):
        root, _ = self._project_with_epochs(tmp_path, epochs=3)
        main(["--project", str(root), "gc", "--tier-cold", "--keep-epochs", "1"])
        capsys.readouterr()
        assert main(["--project", str(root), "gc", "--tier-cold", "--keep-epochs", "1"]) == 0
        assert "archived: 0 blob(s)" in capsys.readouterr().out
