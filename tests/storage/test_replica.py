"""ReplicatedDatabase semantics: snapshots, staleness bounds, watermarks."""

from __future__ import annotations

import pytest

from repro.relational.database import Database
from repro.storage.replica import ReplicatedDatabase

INSERT = (
    "INSERT INTO logs (projid, tstamp, filename, ctx_id, value_name, value, value_type)"
    " VALUES ('p', 't0', 'f.py', 0, ?, ?, 1)"
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def primary():
    db = Database(":memory:")
    yield db
    db.close()


def test_rejects_bad_configuration(primary):
    with pytest.raises(ValueError):
        ReplicatedDatabase(primary, replicas=0)
    with pytest.raises(ValueError):
        ReplicatedDatabase(primary, max_staleness=-1.0)


def test_first_read_ships_a_snapshot(primary):
    primary.execute(INSERT, ("acc", "0.9"))
    with ReplicatedDatabase(primary, replicas=1, max_staleness=10.0) as rep:
        assert rep.query("SELECT value_name FROM logs") == [("acc",)]
        assert rep.stats.syncs == 1


def test_reads_within_staleness_bound_skip_sync(primary):
    clock = FakeClock()
    rep = ReplicatedDatabase(primary, replicas=1, max_staleness=5.0, clock=clock)
    primary.execute(INSERT, ("acc", "1"))
    assert rep.query("SELECT COUNT(*) FROM logs") == [(1,)]  # initial ship
    primary.execute(INSERT, ("acc", "2"))

    # Still inside the bound: the replica may serve the stale snapshot.
    clock.advance(4.0)
    assert rep.query("SELECT COUNT(*) FROM logs") == [(1,)]
    assert rep.stats.skipped_syncs == 1

    # Bound exceeded: the next read must re-ship.
    clock.advance(2.0)
    assert rep.query("SELECT COUNT(*) FROM logs") == [(2,)]
    assert rep.stats.syncs == 2
    rep.close()


def test_zero_staleness_is_read_your_writes(primary):
    rep = ReplicatedDatabase(primary, replicas=2, max_staleness=0)
    for i in range(5):
        rep.execute(INSERT, ("step", str(i)))
        assert rep.query_one("SELECT COUNT(*) FROM logs") == (i + 1,)
    rep.close()


def test_unchanged_primary_never_resyncs(primary):
    primary.execute(INSERT, ("acc", "1"))
    rep = ReplicatedDatabase(primary, replicas=1, max_staleness=0)
    for _ in range(10):
        rep.query("SELECT COUNT(*) FROM logs")
    assert rep.stats.syncs == 1
    rep.close()


def test_round_robin_spreads_reads(primary):
    rep = ReplicatedDatabase(primary, replicas=3, max_staleness=0)
    seen = []
    for _ in range(6):
        with rep.checkout_replica() as replica:
            seen.append(replica.index)
    assert seen == [0, 1, 2, 0, 1, 2]
    rep.close()


def test_watermark_tracks_logs_seq(primary):
    rep = ReplicatedDatabase(primary, replicas=2, max_staleness=0)
    assert rep.min_watermark() == 0  # nothing shipped yet
    primary.executemany(INSERT, [("a", "1"), ("b", "2"), ("c", "3")])
    rep.refresh()
    assert rep.min_watermark() == 3
    with rep.checkout_replica() as replica:
        assert replica.watermark == 3
    rep.close()


def test_on_sync_fires_per_ship_with_replica_index(primary):
    fired: list[int] = []
    rep = ReplicatedDatabase(
        primary, replicas=2, max_staleness=0, on_sync=fired.append
    )
    primary.execute(INSERT, ("acc", "1"))
    rep.refresh()
    assert sorted(fired) == [0, 1]
    rep.close()


def test_writes_route_to_primary_and_count(primary):
    rep = ReplicatedDatabase(primary, replicas=1, max_staleness=0)
    rep.execute(INSERT, ("a", "1"))
    with rep.transaction() as conn:
        conn.execute(INSERT, ("b", "2"))
    rep.executemany(INSERT, [("c", "3")])
    assert rep.stats.primary_writes == 3
    assert primary.count("logs") == 3
    rep.close()


def test_transaction_rollback_never_reaches_replicas(primary):
    rep = ReplicatedDatabase(primary, replicas=1, max_staleness=0)
    with pytest.raises(RuntimeError):
        with rep.transaction() as conn:
            conn.execute(INSERT, ("doomed", "1"))
            raise RuntimeError("abort")
    assert rep.query("SELECT COUNT(*) FROM logs") == [(0,)]
    rep.close()


def test_close_leaves_primary_usable(primary):
    rep = ReplicatedDatabase(primary, replicas=2, max_staleness=0)
    rep.execute(INSERT, ("a", "1"))
    rep.close()
    rep.close()  # idempotent
    assert primary.count("logs") == 1
