"""Unit and property tests for the Column type."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.dataframe import Column
from repro.errors import DataFrameError, LengthMismatchError


class TestBasics:
    def test_length_and_iteration(self):
        col = Column("x", [1, 2, 3])
        assert len(col) == 3
        assert list(col) == [1, 2, 3]

    def test_indexing_scalar_and_slice(self):
        col = Column("x", [10, 20, 30, 40])
        assert col[0] == 10
        assert col[-1] == 40
        sliced = col[1:3]
        assert isinstance(sliced, Column)
        assert sliced.to_list() == [20, 30]

    def test_rename_preserves_values(self):
        col = Column("x", [1, 2]).rename("y")
        assert col.name == "y"
        assert col.to_list() == [1, 2]

    def test_columns_are_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Column("x", [1]))


class TestComparisons:
    def test_eq_scalar_produces_boolean_column(self):
        col = Column("x", [1, 2, 1])
        mask = col == 1
        assert mask.to_list() == [True, False, True]

    def test_ordering_operators(self):
        col = Column("x", [1, 5, 3])
        assert (col > 2).to_list() == [False, True, True]
        assert (col <= 3).to_list() == [True, False, True]

    def test_comparison_with_none_is_false(self):
        col = Column("x", [1, None, 3])
        assert (col == 1).to_list() == [True, False, False]

    def test_comparison_between_columns(self):
        a = Column("a", [1, 2, 3])
        b = Column("b", [1, 0, 5])
        assert (a == b).to_list() == [True, False, False]

    def test_length_mismatch_raises(self):
        with pytest.raises(LengthMismatchError):
            Column("a", [1, 2]) == Column("b", [1])

    def test_incomparable_types_yield_false(self):
        col = Column("x", ["a", 1])
        assert (col > 5).to_list() == [False, False]


class TestArithmetic:
    def test_add_scalar(self):
        assert (Column("x", [1, 2]) + 1).to_list() == [2, 3]

    def test_radd_and_rsub(self):
        assert (10 + Column("x", [1, 2])).to_list() == [11, 12]
        assert (10 - Column("x", [1, 2])).to_list() == [9, 8]

    def test_subtract_columns(self):
        a = Column("a", [5, 7])
        b = Column("b", [2, 3])
        assert (a - b).to_list() == [3, 4]

    def test_multiply_and_divide(self):
        col = Column("x", [2, 4])
        assert (col * 3).to_list() == [6, 12]
        assert (col / 2).to_list() == [1.0, 2.0]

    def test_nulls_propagate_through_arithmetic(self):
        col = Column("x", [1, None, 3])
        assert (col + 1).to_list() == [2, None, 4]

    def test_boolean_and_or_invert(self):
        a = Column("a", [True, True, False])
        b = Column("b", [True, False, False])
        assert (a & b).to_list() == [True, False, False]
        assert (a | b).to_list() == [True, True, False]
        assert (~a).to_list() == [False, False, True]


class TestMissingness:
    def test_isna_detects_none_and_nan(self):
        col = Column("x", [1, None, float("nan"), 4])
        assert col.isna().to_list() == [False, True, True, False]
        assert col.notna().to_list() == [True, False, False, True]

    def test_fillna_and_dropna(self):
        col = Column("x", [1, None, 3])
        assert col.fillna(0).to_list() == [1, 0, 3]
        assert col.dropna().to_list() == [1, 3]

    def test_any_all_ignore_nulls(self):
        assert Column("x", [None, 0, 1]).any() is True
        assert Column("x", [None, 1, 1]).all() is True
        assert Column("x", [None, None]).any() is False


class TestCastsAndMaps:
    def test_astype_int(self):
        col = Column("x", ["1", "2", None])
        assert col.astype(int).to_list() == [1, 2, None]

    def test_astype_failure_raises_dataframe_error(self):
        with pytest.raises(DataFrameError):
            Column("x", ["abc"]).astype(int)

    def test_map_skips_nulls(self):
        col = Column("x", [1, None, 3])
        assert col.map(lambda v: v * 10).to_list() == [10, None, 30]


class TestReductions:
    def test_sum_mean_min_max(self):
        col = Column("x", [1, 2, 3, None])
        assert col.sum() == 6
        assert col.mean() == pytest.approx(2.0)
        assert col.min() == 1
        assert col.max() == 3

    def test_count_and_nunique_and_unique(self):
        col = Column("x", [1, 1, 2, None])
        assert col.count() == 3
        assert col.nunique() == 2
        assert col.unique() == [1, 2]

    def test_empty_reductions(self):
        col = Column("x", [])
        assert col.sum() == 0
        assert col.mean() is None
        assert col.min() is None
        assert col.max() is None

    def test_cumsum_carries_total_over_nulls(self):
        col = Column("x", [1, None, 2])
        assert col.cumsum().to_list() == [1, 1, 3]


class TestOrdering:
    def test_argsort_places_nulls_last(self):
        col = Column("x", [3, None, 1])
        assert col.argsort() == [2, 0, 1]

    def test_argsort_reverse_keeps_nulls_last(self):
        col = Column("x", [3, None, 1])
        assert col.argsort(reverse=True) == [0, 2, 1]

    def test_take_reorders(self):
        col = Column("x", [10, 20, 30])
        assert col.take([2, 0]).to_list() == [30, 10]

    def test_equals_considers_null_positions(self):
        assert Column("x", [1, None]).equals(Column("y", [1, None]))
        assert not Column("x", [1, None]).equals(Column("y", [1, 2]))


# ---------------------------------------------------------------- properties

@given(st.lists(st.integers(min_value=-10**6, max_value=10**6)))
def test_property_cumsum_last_equals_sum(values):
    col = Column("x", values)
    if values:
        assert col.cumsum().to_list()[-1] == sum(values)
    else:
        assert col.cumsum().to_list() == []


@given(st.lists(st.integers(min_value=-10**6, max_value=10**6), min_size=1))
def test_property_argsort_produces_sorted_values(values):
    col = Column("x", values)
    order = col.argsort()
    sorted_values = [values[i] for i in order]
    assert sorted_values == sorted(values)


@given(
    st.lists(st.one_of(st.none(), st.integers(min_value=-100, max_value=100)), max_size=50),
    st.integers(min_value=-100, max_value=100),
)
def test_property_fillna_removes_all_nulls(values, fill):
    filled = Column("x", values).fillna(fill)
    assert not filled.isna().any()
    assert len(filled) == len(values)


@given(st.lists(st.integers(min_value=-1000, max_value=1000)))
def test_property_add_then_subtract_roundtrips(values):
    col = Column("x", values)
    assert ((col + 7) - 7).to_list() == values
