"""Unit and property tests for the DataFrame type."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.dataframe import Column, DataFrame
from repro.errors import ColumnNotFoundError, DataFrameError, LengthMismatchError


@pytest.fixture()
def frame():
    return DataFrame(
        {
            "run": ["a", "a", "b", "b"],
            "epoch": [0, 1, 0, 1],
            "acc": [0.5, 0.7, 0.6, None],
        }
    )


class TestConstructionAndShape:
    def test_shape_and_columns(self, frame):
        assert frame.shape == (4, 3)
        assert frame.columns == ["run", "epoch", "acc"]
        assert not frame.empty

    def test_empty_frame(self):
        frame = DataFrame()
        assert frame.empty
        assert frame.shape == (0, 0)

    def test_column_length_mismatch_raises(self):
        frame = DataFrame({"a": [1, 2]})
        with pytest.raises(LengthMismatchError):
            frame["b"] = [1, 2, 3]

    def test_scalar_assignment_broadcasts(self):
        frame = DataFrame({"a": [1, 2, 3]})
        frame["b"] = 7
        assert frame["b"].to_list() == [7, 7, 7]

    def test_setitem_accepts_column(self):
        frame = DataFrame({"a": [1, 2]})
        frame["b"] = Column("ignored", [3, 4])
        assert frame["b"].to_list() == [3, 4]


class TestAccess:
    def test_getitem_column(self, frame):
        assert frame["epoch"].to_list() == [0, 1, 0, 1]

    def test_attribute_access(self, frame):
        assert frame.run.to_list() == ["a", "a", "b", "b"]

    def test_missing_column_raises_with_available_names(self, frame):
        with pytest.raises(ColumnNotFoundError) as excinfo:
            frame["missing"]
        assert "acc" in str(excinfo.value)

    def test_missing_attribute_raises_attribute_error(self, frame):
        with pytest.raises(AttributeError):
            frame.missing_column

    def test_row_access_and_negative_index(self, frame):
        assert frame.row(0) == {"run": "a", "epoch": 0, "acc": 0.5}
        assert frame.row(-1)["run"] == "b"

    def test_row_out_of_range(self, frame):
        with pytest.raises(DataFrameError):
            frame.row(10)

    def test_slicing_returns_subframe(self, frame):
        assert len(frame[1:3]) == 2

    def test_unsupported_indexer_raises(self, frame):
        with pytest.raises(DataFrameError):
            frame[3.14]


class TestFiltering:
    def test_boolean_mask_from_column_comparison(self, frame):
        subset = frame[frame.run == "a"]
        assert len(subset) == 2
        assert subset["epoch"].to_list() == [0, 1]

    def test_mask_length_mismatch_raises(self, frame):
        with pytest.raises(LengthMismatchError):
            frame[Column("m", [True])]

    def test_filter_with_predicate(self, frame):
        subset = frame.filter(lambda row: row["epoch"] == 1)
        assert len(subset) == 2

    def test_dropna_subset(self, frame):
        assert len(frame.dropna(subset=["acc"])) == 3

    def test_dropna_unknown_column_raises(self, frame):
        with pytest.raises(ColumnNotFoundError):
            frame.dropna(subset=["nope"])

    def test_fillna(self, frame):
        filled = frame.fillna(0.0)
        assert filled["acc"].to_list()[-1] == 0.0

    def test_drop_duplicates(self):
        frame = DataFrame({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert len(frame.drop_duplicates()) == 2

    def test_drop_duplicates_subset_keeps_first(self):
        frame = DataFrame({"a": [1, 1, 2], "b": ["x", "y", "z"]})
        deduped = frame.drop_duplicates(subset=["a"])
        assert deduped["b"].to_list() == ["x", "z"]


class TestProjection:
    def test_select_and_column_list_indexing(self, frame):
        assert frame.select(["run", "acc"]).columns == ["run", "acc"]
        assert frame[["run"]].columns == ["run"]

    def test_drop(self, frame):
        assert frame.drop("acc").columns == ["run", "epoch"]
        assert frame.drop(["run", "epoch"]).columns == ["acc"]

    def test_rename(self, frame):
        assert "accuracy" in frame.rename({"acc": "accuracy"}).columns

    def test_assign_with_callable(self, frame):
        out = frame.assign(double=lambda f: (f["epoch"] * 2).to_list())
        assert out["double"].to_list() == [0, 2, 0, 2]
        assert "double" not in frame.columns  # original untouched

    def test_copy_is_independent(self, frame):
        copy = frame.copy()
        copy["new"] = 1
        assert "new" not in frame.columns

    def test_head_and_tail(self, frame):
        assert len(frame.head(2)) == 2
        assert frame.tail(1).row(0)["run"] == "b"


class TestSorting:
    def test_sort_values_ascending_and_descending(self):
        frame = DataFrame({"x": [3, 1, 2]})
        assert frame.sort_values("x")["x"].to_list() == [1, 2, 3]
        assert frame.sort_values("x", ascending=False)["x"].to_list() == [3, 2, 1]

    def test_sort_by_multiple_columns(self):
        frame = DataFrame({"a": [1, 0, 1], "b": [2, 9, 1]})
        ordered = frame.sort_values(["a", "b"])
        assert ordered["b"].to_list() == [9, 1, 2]

    def test_sort_places_nulls_last(self):
        frame = DataFrame({"x": [2, None, 1]})
        assert frame.sort_values("x")["x"].to_list() == [1, 2, None]

    def test_sort_unknown_column_raises(self, frame):
        with pytest.raises(ColumnNotFoundError):
            frame.sort_values("nope")


class TestGroupBy:
    def test_group_sizes(self, frame):
        sizes = frame.groupby("run").size()
        assert sizes["size"].to_list() == [2, 2]

    def test_agg_named_reductions(self, frame):
        out = frame.groupby("run").agg({"acc": "mean", "epoch": "max"})
        row_a = [r for r in out.to_records() if r["run"] == "a"][0]
        assert row_a["acc"] == pytest.approx(0.6)
        assert row_a["epoch"] == 1

    def test_agg_first_last_and_callable(self, frame):
        out = frame.groupby("run").agg({"acc": "first", "epoch": lambda col: sum(col.to_list())})
        row_b = [r for r in out.to_records() if r["run"] == "b"][0]
        assert row_b["acc"] == 0.6
        assert row_b["epoch"] == 1

    def test_agg_unknown_reduction_raises(self, frame):
        with pytest.raises(DataFrameError):
            frame.groupby("run").agg({"acc": "median?"})

    def test_groupby_multiple_keys_and_iteration(self, frame):
        grouped = frame.groupby(["run", "epoch"])
        assert len(grouped) == 4
        keys = [key for key, _sub in grouped]
        assert ("a", 0) in keys

    def test_groupby_unknown_column_raises(self, frame):
        with pytest.raises(ColumnNotFoundError):
            frame.groupby("nope")


class TestConversionAndDisplay:
    def test_to_records_roundtrip(self, frame):
        records = frame.to_records()
        assert records[1] == {"run": "a", "epoch": 1, "acc": 0.7}

    def test_to_dict_orientations(self, frame):
        assert frame.to_dict()["epoch"] == [0, 1, 0, 1]
        assert frame.to_dict("records")[0]["run"] == "a"
        with pytest.raises(DataFrameError):
            frame.to_dict("columns")

    def test_to_string_contains_headers_and_truncation_note(self):
        frame = DataFrame({"x": list(range(50))})
        rendered = frame.to_string(max_rows=5)
        assert "x" in rendered
        assert "50 rows total" in rendered

    def test_equals(self, frame):
        assert frame.equals(frame.copy())
        assert not frame.equals(frame.drop("acc"))


# ---------------------------------------------------------------- properties

row_strategy = st.fixed_dictionaries(
    {
        "a": st.integers(min_value=-100, max_value=100),
        "b": st.sampled_from(["x", "y", "z"]),
    }
)


@given(st.lists(row_strategy, max_size=40))
def test_property_mask_filter_partitions_rows(rows):
    from repro.dataframe import from_records

    frame = from_records(rows, columns=["a", "b"])
    if frame.empty:
        return
    mask = frame["b"] == "x"
    kept = frame[mask]
    dropped = frame[~mask]
    assert len(kept) + len(dropped) == len(frame)
    assert all(r["b"] == "x" for r in kept.to_records())


@given(st.lists(row_strategy, min_size=1, max_size=40))
def test_property_sort_is_stable_permutation(rows):
    from repro.dataframe import from_records

    frame = from_records(rows, columns=["a", "b"])
    ordered = frame.sort_values("a")
    assert sorted(frame["a"].to_list()) == ordered["a"].to_list()
    assert len(ordered) == len(frame)


@given(st.lists(row_strategy, max_size=40))
def test_property_groupby_sizes_sum_to_row_count(rows):
    from repro.dataframe import from_records

    frame = from_records(rows, columns=["a", "b"])
    if frame.empty:
        return
    sizes = frame.groupby("b").size()
    assert sum(sizes["size"].to_list()) == len(frame)
