"""Tests for frame-level operations: from_records, concat, merge, pivot_logs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.dataframe import DataFrame, concat, from_records, merge, pivot_logs
from repro.errors import ColumnNotFoundError, DataFrameError


class TestFromRecords:
    def test_column_order_first_seen(self):
        frame = from_records([{"a": 1}, {"b": 2, "a": 3}])
        assert frame.columns == ["a", "b"]
        assert frame["b"].to_list() == [None, 2]

    def test_explicit_columns_preserved_when_empty(self):
        frame = from_records([], columns=["x", "y"])
        assert frame.columns == ["x", "y"]
        assert frame.empty

    def test_missing_keys_become_nulls(self):
        frame = from_records([{"a": 1}, {}], columns=["a"])
        assert frame["a"].to_list() == [1, None]


class TestConcat:
    def test_stacks_rows_and_unions_columns(self):
        a = DataFrame({"x": [1], "y": ["p"]})
        b = DataFrame({"x": [2], "z": [True]})
        combined = concat([a, b])
        assert len(combined) == 2
        assert combined.columns == ["x", "y", "z"]
        assert combined["z"].to_list() == [None, True]

    def test_concat_empty_list(self):
        assert concat([]).empty

    def test_concat_skips_none_entries(self):
        a = DataFrame({"x": [1]})
        assert len(concat([a, None, a])) == 2


class TestMerge:
    def test_inner_join_matches_keys(self):
        left = DataFrame({"k": [1, 2, 3], "a": ["x", "y", "z"]})
        right = DataFrame({"k": [2, 3, 4], "b": [20, 30, 40]})
        joined = merge(left, right, on="k")
        assert len(joined) == 2
        assert joined["b"].to_list() == [20, 30]

    def test_left_join_keeps_unmatched_left_rows(self):
        left = DataFrame({"k": [1, 2], "a": ["x", "y"]})
        right = DataFrame({"k": [2], "b": [20]})
        joined = merge(left, right, on="k", how="left")
        assert len(joined) == 2
        assert joined["b"].to_list() == [None, 20]

    def test_join_on_multiple_keys(self):
        left = DataFrame({"k1": [1, 1], "k2": ["a", "b"], "v": [10, 11]})
        right = DataFrame({"k1": [1], "k2": ["b"], "w": [99]})
        joined = merge(left, right, on=["k1", "k2"], how="left")
        assert joined["w"].to_list() == [None, 99]

    def test_overlapping_columns_get_suffixes(self):
        left = DataFrame({"k": [1], "v": ["left"]})
        right = DataFrame({"k": [1], "v": ["right"]})
        joined = merge(left, right, on="k")
        assert set(joined.columns) == {"k", "v_x", "v_y"}

    def test_one_to_many_join_duplicates_left_rows(self):
        left = DataFrame({"k": [1], "a": ["x"]})
        right = DataFrame({"k": [1, 1], "b": [1, 2]})
        assert len(merge(left, right, on="k")) == 2

    def test_missing_key_column_raises(self):
        with pytest.raises(ColumnNotFoundError):
            merge(DataFrame({"k": [1]}), DataFrame({"other": [1]}), on="k")

    def test_unsupported_join_type_raises(self):
        with pytest.raises(DataFrameError):
            merge(DataFrame({"k": [1]}), DataFrame({"k": [1]}), on="k", how="outer")

    def test_empty_result_preserves_schema(self):
        left = DataFrame({"k": [1], "a": [2]})
        right = DataFrame({"k": [9], "b": [3]})
        joined = merge(left, right, on="k")
        assert joined.empty
        assert "b" in joined.columns


class TestPivotLogs:
    def test_basic_pivot(self):
        records = [
            {"run": "r1", "value_name": "acc", "value": 0.9},
            {"run": "r1", "value_name": "loss", "value": 0.1},
            {"run": "r2", "value_name": "acc", "value": 0.8},
        ]
        frame = pivot_logs(records, ["acc", "loss"], ["run"])
        assert len(frame) == 2
        first = frame.row(0)
        assert first["acc"] == 0.9 and first["loss"] == 0.1

    def test_pivot_ignores_unrequested_names(self):
        records = [{"run": "r", "value_name": "junk", "value": 1}]
        frame = pivot_logs(records, ["acc"], ["run"])
        assert frame.empty

    def test_pivot_keeps_dimension_columns(self):
        records = [{"run": "r", "epoch": 3, "value_name": "acc", "value": 0.5}]
        frame = pivot_logs(records, ["acc"], ["run", "epoch"])
        assert frame.row(0)["epoch"] == 3


# ---------------------------------------------------------------- properties

keys = st.integers(min_value=0, max_value=5)


@given(
    st.lists(keys, min_size=0, max_size=20),
    st.lists(keys, min_size=0, max_size=20),
)
def test_property_inner_join_cardinality_matches_key_products(left_keys, right_keys):
    left = from_records([{"k": k, "a": i} for i, k in enumerate(left_keys)], columns=["k", "a"])
    right = from_records([{"k": k, "b": i} for i, k in enumerate(right_keys)], columns=["k", "b"])
    joined = merge(left, right, on="k")
    expected = sum(left_keys.count(k) * right_keys.count(k) for k in set(left_keys))
    assert len(joined) == expected


@given(st.lists(keys, min_size=0, max_size=20), st.lists(keys, min_size=0, max_size=20))
def test_property_left_join_never_drops_left_rows(left_keys, right_keys):
    left = from_records([{"k": k, "a": i} for i, k in enumerate(left_keys)], columns=["k", "a"])
    right = from_records([{"k": k} for k in set(right_keys)], columns=["k"])
    joined = merge(left, right, on="k", how="left")
    assert len(joined) == len(left)
