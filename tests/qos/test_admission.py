"""AdmissionController behaviour: decisions, counters, refresh, snapshots."""

from __future__ import annotations

import pytest

from repro.qos import AdmissionController, PolicyRule, PolicyStore
from repro.testing import ManualClock


@pytest.fixture()
def store(tmp_path):
    with PolicyStore.open(tmp_path) as s:
        yield s


def controller(store, clock, **kwargs):
    kwargs.setdefault("refresh_interval", 0.0)  # poll every check: tests want determinism
    return AdmissionController(store, clock=clock, **kwargs)


class TestDecisions:
    def test_unlimited_tenant_always_admitted(self, store):
        clock = ManualClock()
        ctl = controller(store, clock)
        for _ in range(100):
            assert ctl.admit("anyone", nbytes=10_000).allowed

    def test_rate_limit_throttles_with_positive_retry_after(self, store):
        store.put(PolicyRule(selector="hot", rate=2.0, burst=2.0))
        clock = ManualClock()
        ctl = controller(store, clock)
        assert ctl.admit("hot").allowed
        assert ctl.admit("hot").allowed
        decision = ctl.admit("hot")
        assert decision.throttled and not decision.rejected
        assert decision.reason == "rate"
        assert decision.retry_after > 0.0
        clock.advance(decision.retry_after)
        assert ctl.admit("hot").allowed

    def test_byte_quota_throttles_and_recovers_next_window(self, store):
        store.put(PolicyRule(selector="hot", byte_quota=100, window_seconds=10.0))
        clock = ManualClock()
        ctl = controller(store, clock)
        assert ctl.admit("hot", nbytes=80).allowed
        decision = ctl.admit("hot", nbytes=40)
        assert decision.throttled and decision.reason == "quota"
        assert 0.0 < decision.retry_after <= 10.0
        clock.advance(10.0)
        assert ctl.admit("hot", nbytes=40).allowed

    def test_oversized_request_is_rejected_not_throttled(self, store):
        store.put(PolicyRule(selector="hot", byte_quota=100, window_seconds=10.0))
        ctl = controller(store, ManualClock())
        decision = ctl.admit("hot", nbytes=101)
        assert decision.rejected and not decision.throttled
        assert decision.reason == "too_large"
        assert decision.retry_after == 10.0

    def test_rate_throttle_does_not_charge_quota(self, store):
        store.put(PolicyRule(selector="hot", rate=1.0, byte_quota=100, window_seconds=10.0))
        clock = ManualClock()
        ctl = controller(store, clock)
        assert ctl.admit("hot", nbytes=10).allowed
        for _ in range(5):
            assert ctl.admit("hot", nbytes=10).reason == "rate"
        # Only the single admitted request's bytes were charged.
        assert ctl.snapshot("hot")["quota_remaining"] == 90

    def test_quota_throttle_does_not_spend_rate_token(self, store):
        store.put(PolicyRule(selector="hot", rate=10.0, burst=5.0, byte_quota=100, window_seconds=10.0))
        clock = ManualClock()
        ctl = controller(store, clock)
        assert ctl.admit("hot", nbytes=90).allowed
        assert ctl.admit("hot", nbytes=20).reason == "quota"
        assert ctl.snapshot("hot")["bucket_level"] == 4.0  # only the grant spent a token

    def test_tenants_are_isolated(self, store):
        store.put(PolicyRule(selector="hot", rate=1.0, burst=1.0))
        clock = ManualClock()
        ctl = controller(store, clock)
        assert ctl.admit("hot").allowed
        assert ctl.admit("hot").throttled
        for _ in range(20):
            assert ctl.admit("cold").allowed  # unmentioned tenant: builtin unlimited


class TestCountersAndSnapshot:
    def test_counters_partition_by_outcome_and_stay_monotone(self, store):
        store.put(PolicyRule(selector="hot", rate=2.0, burst=2.0, byte_quota=100, window_seconds=60.0))
        clock = ManualClock()
        ctl = controller(store, clock)
        ctl.admit("hot", nbytes=10)
        ctl.admit("hot", nbytes=10)
        ctl.admit("hot", nbytes=10)  # rate throttle
        ctl.admit("hot", nbytes=500)  # too large
        stats = ctl.snapshot("hot")
        assert (stats["admitted"], stats["throttled"], stats["rejected"]) == (2, 1, 1)

    def test_global_snapshot_totals_and_per_tenant_blocks(self, store):
        store.put(PolicyRule(selector="hot", rate=1.0, burst=1.0))
        clock = ManualClock()
        ctl = controller(store, clock)
        ctl.admit("hot")
        ctl.admit("hot")
        ctl.admit("cold")
        snap = ctl.snapshot()
        assert snap["admitted"] == 2
        assert snap["throttled"] == 1
        assert snap["rejected"] == 0
        assert set(snap["tenants"]) == {"hot", "cold"}
        assert snap["tenants"]["hot"]["policy"]["source"] == "rule"
        assert snap["tenants"]["cold"]["policy"]["source"] == "builtin"

    def test_snapshot_materializes_unseen_tenant_policy(self, store):
        store.put(PolicyRule(selector="hot", rate=3.0))
        ctl = controller(store, ManualClock())
        stats = ctl.snapshot("hot")  # never admitted anything
        assert stats["admitted"] == 0
        assert stats["bucket_level"] == 3.0  # burst defaults to max(rate, 1)


class TestRefresh:
    def test_in_process_policy_change_applies_immediately(self, store):
        clock = ManualClock()
        ctl = AdmissionController(store, refresh_interval=3600.0, clock=clock)
        assert ctl.admit("hot").allowed  # builtin unlimited
        store.put(PolicyRule(selector="hot", rate=1.0, burst=1.0))  # fires on_change
        assert ctl.admit("hot").allowed  # fresh bucket from the new rule
        assert ctl.admit("hot").throttled

    def test_cross_process_change_seen_after_refresh_interval(self, store, tmp_path):
        clock = ManualClock()
        ctl = AdmissionController(store, refresh_interval=5.0, clock=clock)
        assert ctl.admit("hot").allowed
        # A second process writes through its own store handle: no on_change
        # hook fires here, only the shared generation counter moves.
        with PolicyStore.open(tmp_path) as other:
            other.put(PolicyRule(selector="hot", rate=1.0, burst=1.0))
        assert ctl.admit("hot").allowed  # still inside the stale window
        clock.advance(5.1)
        ctl.admit("hot")
        assert ctl.admit("hot").throttled

    def test_counters_survive_policy_rebuild(self, store):
        clock = ManualClock()
        ctl = AdmissionController(store, refresh_interval=0.0, clock=clock)
        store.put(PolicyRule(selector="hot", rate=1.0, burst=1.0))
        ctl.admit("hot")
        ctl.admit("hot")  # throttled
        before = ctl.snapshot("hot")
        store.put(PolicyRule(selector="hot", rate=100.0))
        after = ctl.snapshot("hot")
        assert after["admitted"] == before["admitted"] == 1
        assert after["throttled"] == before["throttled"] == 1
        assert after["policy"]["rate"] == 100.0


class TestJobPriority:
    def test_priority_class_maps_to_job_priority(self, store):
        store.put(PolicyRule(selector="vip", priority="high"))
        store.put(PolicyRule(selector="batch_*", priority="low"))
        ctl = controller(store, ManualClock())
        assert ctl.job_priority("vip") == 100
        assert ctl.job_priority("batch_7") == -100
        assert ctl.job_priority("anyone") == 0
