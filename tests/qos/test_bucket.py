"""Token-bucket and quota-window accounting under controlled clocks.

Everything here runs on :class:`repro.testing.ManualClock` (exact refill
math) or :class:`repro.testing.SkewedClock` (seeded drift, including
backwards readings) — the core QoS invariant being that a misbehaving
clock can throttle a tenant a little early or late but can never mint
negative tokens, negative retry hints, or an early window reset.
"""

from __future__ import annotations

import pytest

from repro.qos import QuotaWindow, TokenBucket
from repro.testing import FaultPlan, ManualClock, SkewedClock


class TestTokenBucket:
    def test_starts_full_and_spends_down(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert bucket.level == 4.0
        for _ in range(4):
            assert bucket.try_take() == 0.0
        assert bucket.level == 0.0

    def test_refill_math_is_rate_times_elapsed(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, burst=10.0, clock=clock)
        for _ in range(10):
            bucket.try_take()
        clock.advance(1.5)
        assert bucket.level == pytest.approx(3.0)  # 1.5s * 2 tokens/s

    def test_burst_caps_idle_accrual(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=100.0, burst=5.0, clock=clock)
        bucket.try_take(5.0)
        clock.advance(3600.0)  # an hour idle earns one burst, not 360k tokens
        assert bucket.level == 5.0

    def test_denied_take_returns_positive_retry_hint(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.try_take() == 0.0
        hint = bucket.try_take()
        assert hint == pytest.approx(0.25)  # 1 token at 4/s
        clock.advance(hint)
        assert bucket.try_take() == 0.0

    def test_denied_take_does_not_spend(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        bucket.try_take()
        level_after_denials = None
        for _ in range(5):
            assert bucket.try_take() > 0.0
            level_after_denials = bucket.level
        assert level_after_denials == 0.0  # retries never drive it negative

    def test_backwards_clock_never_grants_negative_tokens(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        bucket.try_take(3.0)
        clock.advance(-500.0)
        assert bucket.level == 1.0  # unchanged, not negative
        assert bucket.try_take() == 0.0
        assert bucket.try_take() > 0.0  # empty now, but the hint is positive

    def test_backwards_clock_credits_time_once_caught_up(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=1.0, burst=10.0, clock=clock)
        bucket.try_take(10.0)
        clock.advance(-100.0)
        bucket.try_take(0.0)  # refill probe while skewed back
        clock.advance(100.0 + 4.0)  # catch back up and move 4s forward
        assert bucket.level == pytest.approx(4.0)  # 4 real seconds, once

    def test_skewed_clock_levels_stay_in_range(self):
        plan = FaultPlan(seed=7, skew_rate=0.5, max_skew_seconds=30.0)
        manual = ManualClock()
        skewed = SkewedClock(plan, base=manual)
        bucket = TokenBucket(rate=5.0, burst=8.0, clock=skewed)
        for i in range(500):
            manual.advance(0.01)
            hint = bucket.try_take()
            assert hint >= 0.0
            level = bucket.level
            assert 0.0 <= level <= 8.0, f"level {level} out of range at step {i}"

    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_rejects_nonpositive_rate(self, rate):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=1.0)

    def test_rejects_subunit_burst(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestQuotaWindow:
    def test_consumes_until_quota_then_denies(self):
        clock = ManualClock()
        window = QuotaWindow(quota=100, window_seconds=60.0, clock=clock)
        assert window.try_consume(60) == 0.0
        assert window.try_consume(40) == 0.0
        assert window.remaining == 0
        assert window.try_consume(1) > 0.0

    def test_denied_consume_does_not_charge(self):
        clock = ManualClock()
        window = QuotaWindow(quota=100, window_seconds=60.0, clock=clock)
        window.try_consume(90)
        assert window.try_consume(20) > 0.0
        assert window.used == 90  # the denied 20 bytes were not charged

    def test_window_resets_after_window_seconds(self):
        clock = ManualClock()
        window = QuotaWindow(quota=100, window_seconds=60.0, clock=clock)
        window.try_consume(100)
        clock.advance(59.9)
        assert window.try_consume(1) > 0.0
        clock.advance(0.1)
        assert window.try_consume(100) == 0.0

    def test_retry_hint_is_time_until_reset(self):
        clock = ManualClock()
        window = QuotaWindow(quota=10, window_seconds=60.0, clock=clock)
        window.try_consume(10)
        clock.advance(45.0)
        assert window.try_consume(1) == pytest.approx(15.0)

    def test_backwards_clock_never_resets_early_or_hints_negative(self):
        clock = ManualClock()
        window = QuotaWindow(quota=10, window_seconds=60.0, clock=clock)
        window.try_consume(10)
        clock.advance(-1000.0)
        hint = window.try_consume(1)
        assert hint > 0.0
        assert hint <= 60.0  # clamped to one window even with huge skew
        assert window.used == 10  # no early reset

    def test_skewed_clock_usage_stays_bounded(self):
        plan = FaultPlan(seed=11, skew_rate=0.4, max_skew_seconds=90.0)
        manual = ManualClock()
        window = QuotaWindow(quota=50, window_seconds=10.0, clock=SkewedClock(plan, base=manual))
        for _ in range(300):
            manual.advance(0.1)
            hint = window.try_consume(7)
            assert hint >= 0.0
            assert 0 <= window.used <= 50

    @pytest.mark.parametrize("quota,window", [(0, 1.0), (-5, 1.0), (10, 0.0), (10, -1.0)])
    def test_rejects_degenerate_parameters(self, quota, window):
        with pytest.raises(ValueError):
            QuotaWindow(quota=quota, window_seconds=window)

    def test_rejects_negative_bytes(self):
        window = QuotaWindow(quota=10, window_seconds=1.0, clock=ManualClock())
        with pytest.raises(ValueError):
            window.try_consume(-1)
