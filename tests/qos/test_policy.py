"""Policy table semantics: selectors, ordering, and write-time conflicts.

The regression surface ISSUE.md cares most about: a conflicting policy
write must be *rejected with a structured error* — never silently
accepted, never detected only at admission time.
"""

from __future__ import annotations

import pytest

from repro.errors import PolicyConflictError, QosError
from repro.qos import (
    BUILTIN_DEFAULT,
    PolicyRule,
    PolicyStore,
    rule_from_payload,
    selector_covers,
    selector_matches,
    validate_selector,
)


@pytest.fixture()
def store(tmp_path):
    with PolicyStore.open(tmp_path) as s:
        yield s


class TestSelectors:
    def test_validate_accepts_exact_prefix_and_star(self):
        for selector in ("tenant_03", "team.a-1", "team_a_*", "*"):
            assert validate_selector(selector) == selector

    @pytest.mark.parametrize("bad", ["", "*tenant", "a b", "-lead", "*.suffix", "a**"])
    def test_validate_rejects_malformed(self, bad):
        with pytest.raises(QosError):
            validate_selector(bad)

    def test_matching(self):
        assert selector_matches("hot", "hot")
        assert not selector_matches("hot", "hot2")
        assert selector_matches("team_*", "team_a")
        assert not selector_matches("team_*", "other")
        assert selector_matches("*", "anything")

    def test_coverage(self):
        assert selector_covers("h*", "hot")
        assert selector_covers("team_*", "team_a_*")
        assert not selector_covers("team_a_*", "team_*")
        assert not selector_covers("hot", "hot")  # a rule never covers itself
        assert not selector_covers("hot", "h*")  # exact covers only itself
        assert not selector_covers("*", "hot")  # default is outside the scan
        assert not selector_covers("h*", "*")


class TestResolution:
    def test_first_match_wins_in_position_order(self, store):
        store.put(PolicyRule(selector="team_a_lead", rate=100.0))
        store.put(PolicyRule(selector="team_a_*", rate=5.0))
        assert store.resolve("team_a_lead").rule.rate == 100.0
        assert store.resolve("team_a_member").rule.rate == 5.0

    def test_default_answers_when_no_rule_matches(self, store):
        store.put(PolicyRule(selector="hot", rate=1.0))
        store.put(PolicyRule(selector="*", rate=9.0))
        resolution = store.resolve("unmentioned")
        assert resolution.source == "default"
        assert resolution.rule.rate == 9.0

    def test_builtin_fallback_is_unlimited(self, store):
        resolution = store.resolve("anyone")
        assert resolution.source == "builtin"
        assert resolution.rule == BUILTIN_DEFAULT
        assert resolution.rule.unlimited

    def test_star_rules_never_enter_the_ordered_scan(self, store):
        store.put(PolicyRule(selector="*", rate=9.0))
        store.put(PolicyRule(selector="hot", rate=1.0))  # written after '*'
        assert store.resolve("hot").rule.rate == 1.0
        assert store.rules() == [store.get("hot")]


class TestConflicts:
    def test_rule_after_covering_prefix_is_rejected_shadowed(self, store):
        store.put(PolicyRule(selector="team_*", rate=5.0))
        with pytest.raises(PolicyConflictError) as exc_info:
            store.put(PolicyRule(selector="team_a", rate=50.0))
        err = exc_info.value
        assert err.code == "shadowed"
        assert err.selector == "team_a"
        assert err.by == "team_*"
        detail = err.as_dict()
        assert detail["code"] == "shadowed" and detail["by"] == "team_*"
        assert store.get("team_a") is None  # rejected write left no trace

    def test_broad_rule_shadowing_later_rules_is_rejected(self, store):
        store.put(PolicyRule(selector="team_a", rate=50.0))
        with pytest.raises(PolicyConflictError) as exc_info:
            store.put(PolicyRule(selector="team_*", rate=5.0, position=-1))
        assert exc_info.value.code == "shadows"
        assert exc_info.value.by == "team_a"

    def test_broad_rule_appended_after_specific_is_fine(self, store):
        store.put(PolicyRule(selector="team_a", rate=50.0))
        store.put(PolicyRule(selector="team_*", rate=5.0))  # appended: a falls through first
        assert store.resolve("team_a").rule.rate == 50.0
        assert store.resolve("team_b").rule.rate == 5.0

    def test_exact_rule_never_shadows_anything(self, store):
        store.put(PolicyRule(selector="h*", rate=5.0))
        # 'hot' after 'h*' is shadowed; but an exact rule can't shadow others.
        store.put(PolicyRule(selector="cold", rate=50.0))
        with pytest.raises(PolicyConflictError):
            store.put(PolicyRule(selector="hot", rate=50.0))

    @pytest.mark.parametrize(
        "rule,field",
        [
            (PolicyRule(selector="t", rate=0.0), "rate"),
            (PolicyRule(selector="t", rate=-2.0), "rate"),
            (PolicyRule(selector="t", rate=1.0, burst=0.25), "burst"),
            (PolicyRule(selector="t", burst=4.0), "burst"),  # burst without rate
            (PolicyRule(selector="t", byte_quota=0), "byte_quota"),
            (PolicyRule(selector="t", rate=1.0, window_seconds=0.0), "window_seconds"),
            (PolicyRule(selector="t", priority="urgent"), "priority"),
        ],
    )
    def test_contradictions_name_the_offending_field(self, store, rule, field):
        with pytest.raises(PolicyConflictError) as exc_info:
            store.put(rule)
        assert exc_info.value.code == "contradiction"
        assert exc_info.value.field == field

    def test_delete_uncovers_previously_conflicting_rule(self, store):
        store.put(PolicyRule(selector="team_*", rate=5.0))
        with pytest.raises(PolicyConflictError):
            store.put(PolicyRule(selector="team_a", rate=50.0))
        assert store.delete("team_*")
        store.put(PolicyRule(selector="team_a", rate=50.0))  # now legal
        assert store.resolve("team_a").rule.rate == 50.0


class TestGenerationAndUpdates:
    def test_generation_bumps_on_every_write_and_delete(self, store):
        assert store.generation() == 0
        store.put(PolicyRule(selector="a", rate=1.0))
        store.put(PolicyRule(selector="b", rate=2.0))
        assert store.generation() == 2
        store.delete("a")
        assert store.generation() == 3
        store.delete("a")  # absent: no bump
        assert store.generation() == 3

    def test_on_change_fires_after_successful_writes_only(self, store):
        calls = []
        store.on_change = lambda: calls.append(1)
        store.put(PolicyRule(selector="a", rate=1.0))
        with pytest.raises(PolicyConflictError):
            store.put(PolicyRule(selector="a", rate=0.0))
        assert len(calls) == 1

    def test_update_keeps_position(self, store):
        store.put(PolicyRule(selector="a", rate=1.0))
        store.put(PolicyRule(selector="b", rate=2.0))
        store.put(PolicyRule(selector="a", rate=10.0))  # update, not re-append
        assert [r.selector for r in store.rules()] == ["a", "b"]
        assert store.get("a").rate == 10.0

    def test_persists_across_reopen(self, store, tmp_path):
        store.put(PolicyRule(selector="a", rate=1.0, byte_quota=512, priority="high"))
        with PolicyStore.open(tmp_path) as reopened:
            rule = reopened.get("a")
            assert rule is not None
            assert (rule.rate, rule.byte_quota, rule.priority) == (1.0, 512, "high")


class TestPolicyDocuments:
    def test_load_applies_default_and_rules_in_order(self, store):
        count = store.load(
            {
                "default": {"rate": 2.0},
                "rules": [
                    {"selector": "hot", "rate": 1.0, "byte_quota": 1024},
                    {"selector": "cold_*", "rate": 50.0, "priority": "high"},
                ],
            }
        )
        assert count == 3
        assert store.resolve("hot").rule.byte_quota == 1024
        assert store.resolve("cold_7").rule.priority == "high"
        assert store.resolve("other").rule.rate == 2.0

    def test_load_rejects_conflicting_documents(self, store):
        with pytest.raises(PolicyConflictError):
            store.load(
                {
                    "rules": [
                        {"selector": "team_*", "rate": 5.0},
                        {"selector": "team_a", "rate": 50.0},
                    ]
                }
            )

    def test_payload_rejects_unknown_fields(self):
        with pytest.raises(QosError) as exc_info:
            rule_from_payload("t", {"rate": 1.0, "speed": 9})
        assert "speed" in str(exc_info.value)

    def test_payload_coerces_and_defaults(self):
        rule = rule_from_payload("t", {"rate": "2.5", "byte_quota": "1024"})
        assert rule.rate == 2.5
        assert rule.byte_quota == 1024
        assert rule.window_seconds == 60.0
        assert rule.priority == "normal"
