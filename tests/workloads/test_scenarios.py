"""Tests for the scenario zoo: agent traces and multi-project fan-out."""

from __future__ import annotations

from repro.service import FlorService
from repro.webapp.framework import TestClient
from repro.workloads import AgentSessionWorkload, MultiProjectFanoutWorkload


class TestAgentSessionWorkload:
    def test_populate_writes_the_advertised_counts(self, session):
        workload = AgentSessionWorkload(sessions=2, turns_per_session=3, tool_calls_per_turn=2)
        assert workload.records_per_turn == 9  # 3 fixed + 3 per tool call
        written = workload.populate(session)
        assert written == workload.total_records == 54
        assert session.logs.count() == 54
        assert session.loops.count() == 6  # one turn loop row per turn
        # Ragged, string-heavy trace is still queryable as a frame.
        frame = session.dataframe("tokens_in", "eval_score")
        assert len(frame) == 6

    def test_payloads_are_seeded_and_tag_namespaced(self):
        workload = AgentSessionWorkload(sessions=2, turns_per_session=2, seed=11, tag="trace")
        payloads = list(workload.request_payloads())
        assert len(payloads) == 4  # one POST body per turn
        for payload in payloads:
            assert payload["filename"] == workload.filename
            assert len(payload["records"]) == workload.records_per_turn
            assert all(r["value"].startswith("trace.s") for r in payload["records"])
        # Same seed, same schedule: a chaos ledger can be rebuilt offline.
        replay = list(AgentSessionWorkload(sessions=2, turns_per_session=2, seed=11, tag="trace").request_payloads())
        assert replay == payloads
        assert list(AgentSessionWorkload(sessions=2, turns_per_session=2, seed=12, tag="trace").request_payloads()) != payloads

    def test_http_ingestion_matches_the_record_math(self, tmp_path):
        workload = AgentSessionWorkload(sessions=2, turns_per_session=2, tool_calls_per_turn=1)
        service = FlorService(tmp_path / "root", flush_size=4, flush_interval=None)
        client = TestClient(service.app())
        try:
            for payload in workload.request_payloads():
                assert client.post("/projects/agents/logs", json_body=payload).status == 202
            frame = client.get("/projects/agents/dataframe?names=tool,tool_status&primary=1")
            assert frame.ok
            stats = client.get("/projects/agents/stats").json()
            assert stats["tables"]["logs"] == workload.total_records
        finally:
            service.close()


class TestMultiProjectFanoutWorkload:
    def test_populate_spreads_batches_across_tenants(self, make_session):
        workload = MultiProjectFanoutWorkload(tenants=3, batches_per_tenant=2, records_per_batch=4)
        sessions = {}

        def provider(name):
            sessions[name] = make_session(name)
            return sessions[name]

        written = workload.populate(provider)
        assert written == workload.total_records == 24
        assert set(sessions) == set(workload.project_names())
        for session in sessions.values():
            assert session.logs.count() == 8

    def test_payloads_interleave_round_robin(self, tmp_path):
        workload = MultiProjectFanoutWorkload(tenants=3, batches_per_tenant=2, records_per_batch=2)
        pairs = list(workload.request_payloads())
        # The first cycle hits every tenant once before any repeats — that
        # ordering is what churns the pool's LRU in the chaos soak.
        first_cycle = [project for project, _ in pairs[: workload.tenants]]
        assert first_cycle == workload.project_names()
        service = FlorService(tmp_path / "root", pool_capacity=2, flush_size=4, flush_interval=None)
        client = TestClient(service.app())
        try:
            for project, payload in pairs:
                assert client.post(f"/projects/{project}/logs", json_body=payload).status == 202
            for project in workload.project_names():
                client.get(f"/projects/{project}/dataframe?names={workload.value_name}&primary=1")
                stats = client.get(f"/projects/{project}/stats").json()
                assert (
                    stats["tables"]["logs"]
                    == workload.batches_per_tenant * workload.records_per_batch
                )
                assert stats["dropped_rows_total"] == 0
            assert service.pool.stats.evictions > 0  # capacity 2 < 3 tenants
        finally:
            service.close()
