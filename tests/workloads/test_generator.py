"""Tests for the benchmark workload generators."""

from __future__ import annotations

import ast

import pytest

from repro.workloads import (
    LoggingWorkload,
    PipelineWorkload,
    TrainingWorkload,
    VersionedScriptWorkload,
    populate_logs,
)


class TestLoggingWorkload:
    def test_populate_writes_expected_record_count(self, session):
        workload = LoggingWorkload(runs=2, loops_per_run=5, values_per_loop=3)
        written = workload.populate(session)
        assert written == workload.record_count == 30
        assert session.logs.count() == 30
        assert session.loops.count() == 10

    def test_populated_logs_are_queryable(self, session):
        populate_logs(session, runs=2, loops_per_run=3, values_per_loop=2)
        frame = session.dataframe("metric_0", "metric_1")
        assert len(frame) == 6
        assert frame["tstamp"].nunique() == 2


class TestTrainingWorkload:
    def test_instrumented_run_records_metrics(self, make_session):
        session = make_session("train")
        workload = TrainingWorkload(samples=120, epochs=2, batch_size=32)
        result = workload.run(session, use_flor=True)
        assert len(result.accuracies) == 2
        assert len(session.dataframe("acc")) == 2
        assert len(session.ts2vid.all(session.projid)) == 1

    def test_baseline_run_records_nothing(self, make_session):
        session = make_session("baseline")
        workload = TrainingWorkload(samples=120, epochs=2)
        workload.run(session, use_flor=False)
        assert session.logs.count() == 0


class TestVersionedScriptWorkload:
    def test_sources_parse_and_differ_across_versions(self):
        workload = VersionedScriptWorkload(versions=3)
        sources = [workload.source_for_version(v) for v in range(3)]
        for source in sources:
            ast.parse(source)
        assert len(set(sources)) == 3

    def test_hindsight_source_adds_weight_logging(self):
        workload = VersionedScriptWorkload(versions=3)
        assert "weight" not in workload.source_for_version(2)
        hindsight = workload.hindsight_source()
        ast.parse(hindsight)
        assert 'flor.log("weight"' in hindsight

    def test_record_all_versions_commits_each_version(self, make_session):
        session = make_session("versions")
        workload = VersionedScriptWorkload(versions=3, epochs=2, steps=2)
        vids = workload.record_all_versions(session)
        assert len(vids) == len(set(vids)) == 3
        assert len(session.ts2vid.all(session.projid)) == 3
        assert len(session.dataframe("loss")) == 3 * 2 * 2


class TestPipelineWorkload:
    def test_build_executor_runs_full_pipeline(self, make_session, tmp_path):
        session = make_session("pipe")
        workload = PipelineWorkload(documents=3, max_pages=4, epochs=1)
        executor, pipeline = workload.build_executor(session, tmp_path / "build")
        report = executor.build("run")
        assert report.executed == ["process_pdfs", "featurize", "train", "infer", "run"]
        assert pipeline.state.app is not None
        assert executor.build("run").executed == []


class TestServiceWorkload:
    def test_load_generator_drives_the_service(self, tmp_path):
        from repro.service import FlorService
        from repro.webapp.framework import TestClient
        from repro.workloads import ServiceWorkload

        service = FlorService(tmp_path / "svc", flush_size=8, flush_interval=None)
        try:
            workload = ServiceWorkload(
                clients=4, requests_per_client=5, records_per_request=2, projects=2
            )
            result = workload.run(TestClient(service.app()))
            assert result.errors == 0
            assert result.requests == 20
            assert result.records == workload.total_records == 40
            assert len(result.latencies) == 20
            assert result.records_per_second > 0
            # Every acknowledged record is durable once the shards flush.
            total = 0
            for name in workload.project_names():
                with service.pool.checkout(name) as shard:
                    shard.flush()
                    total += shard.session.db.count("logs")
            assert total == 40
        finally:
            service.close()

    def test_percentiles_are_monotone(self):
        from repro.workloads import ServiceLoadReport

        report = ServiceLoadReport(
            requests=5, records=5, seconds=1.0, latencies=[0.5, 0.1, 0.3, 0.2, 0.4]
        )
        assert report.percentile(0) == 0.1
        assert report.percentile(50) == 0.3
        assert report.percentile(100) == 0.5
        assert report.percentile(50) <= report.percentile(99)

    def test_empty_report_percentile_is_zero(self):
        from repro.workloads import ServiceLoadReport

        report = ServiceLoadReport(requests=0, records=0, seconds=0.0)
        assert report.percentile(99) == 0.0
