"""Tests for the benchmark workload generators."""

from __future__ import annotations

import ast

import pytest

from repro.workloads import (
    LoggingWorkload,
    PipelineWorkload,
    TrainingWorkload,
    VersionedScriptWorkload,
    populate_logs,
)


class TestLoggingWorkload:
    def test_populate_writes_expected_record_count(self, session):
        workload = LoggingWorkload(runs=2, loops_per_run=5, values_per_loop=3)
        written = workload.populate(session)
        assert written == workload.record_count == 30
        assert session.logs.count() == 30
        assert session.loops.count() == 10

    def test_populated_logs_are_queryable(self, session):
        populate_logs(session, runs=2, loops_per_run=3, values_per_loop=2)
        frame = session.dataframe("metric_0", "metric_1")
        assert len(frame) == 6
        assert frame["tstamp"].nunique() == 2


class TestTrainingWorkload:
    def test_instrumented_run_records_metrics(self, make_session):
        session = make_session("train")
        workload = TrainingWorkload(samples=120, epochs=2, batch_size=32)
        result = workload.run(session, use_flor=True)
        assert len(result.accuracies) == 2
        assert len(session.dataframe("acc")) == 2
        assert len(session.ts2vid.all(session.projid)) == 1

    def test_baseline_run_records_nothing(self, make_session):
        session = make_session("baseline")
        workload = TrainingWorkload(samples=120, epochs=2)
        workload.run(session, use_flor=False)
        assert session.logs.count() == 0


class TestVersionedScriptWorkload:
    def test_sources_parse_and_differ_across_versions(self):
        workload = VersionedScriptWorkload(versions=3)
        sources = [workload.source_for_version(v) for v in range(3)]
        for source in sources:
            ast.parse(source)
        assert len(set(sources)) == 3

    def test_hindsight_source_adds_weight_logging(self):
        workload = VersionedScriptWorkload(versions=3)
        assert "weight" not in workload.source_for_version(2)
        hindsight = workload.hindsight_source()
        ast.parse(hindsight)
        assert 'flor.log("weight"' in hindsight

    def test_record_all_versions_commits_each_version(self, make_session):
        session = make_session("versions")
        workload = VersionedScriptWorkload(versions=3, epochs=2, steps=2)
        vids = workload.record_all_versions(session)
        assert len(vids) == len(set(vids)) == 3
        assert len(session.ts2vid.all(session.projid)) == 3
        assert len(session.dataframe("loss")) == 3 * 2 * 2


class TestPipelineWorkload:
    def test_build_executor_runs_full_pipeline(self, make_session, tmp_path):
        session = make_session("pipe")
        workload = PipelineWorkload(documents=3, max_pages=4, epochs=1)
        executor, pipeline = workload.build_executor(session, tmp_path / "build")
        report = executor.build("run")
        assert report.executed == ["process_pdfs", "featurize", "train", "infer", "run"]
        assert pipeline.state.app is not None
        assert executor.build("run").executed == []


class TestServiceWorkload:
    def test_load_generator_drives_the_service(self, tmp_path):
        from repro.service import FlorService
        from repro.webapp.framework import TestClient
        from repro.workloads import ServiceWorkload

        service = FlorService(tmp_path / "svc", flush_size=8, flush_interval=None)
        try:
            workload = ServiceWorkload(
                clients=4, requests_per_client=5, records_per_request=2, projects=2
            )
            result = workload.run(TestClient(service.app()))
            assert result.errors == 0
            assert result.requests == 20
            assert result.records == workload.total_records == 40
            assert len(result.latencies) == 20
            assert result.records_per_second > 0
            # Every acknowledged record is durable once the shards flush.
            total = 0
            for name in workload.project_names():
                with service.pool.checkout(name) as shard:
                    shard.flush()
                    total += shard.session.db.count("logs")
            assert total == 40
        finally:
            service.close()

    def test_percentiles_are_monotone(self):
        from repro.workloads import ServiceLoadReport

        report = ServiceLoadReport(
            requests=5, records=5, seconds=1.0, latencies=[0.5, 0.1, 0.3, 0.2, 0.4]
        )
        assert report.percentile(0) == 0.1
        assert report.percentile(50) == 0.3
        assert report.percentile(100) == 0.5
        assert report.percentile(50) <= report.percentile(99)

    def test_empty_report_percentile_is_zero(self):
        from repro.workloads import ServiceLoadReport

        report = ServiceLoadReport(requests=0, records=0, seconds=0.0)
        assert report.percentile(99) == 0.0


class TestServiceWorkloadBackoff:
    """429 + Retry-After handling in the load generator's retry loop."""

    class _ThrottlingClient:
        """Answers 429 (with a Retry-After) N times per URL, then 202."""

        def __init__(self, throttles_before_success: int, retry_after: str | None = "0.001"):
            from collections import defaultdict

            self.throttles_before_success = throttles_before_success
            self.retry_after = retry_after
            self.attempts = defaultdict(int)
            self.lock = __import__("threading").Lock()

        def post(self, url, json_body=None, body=b""):
            from repro.webapp.framework import Response

            with self.lock:
                self.attempts[url] += 1
                attempt = self.attempts[url]
            if attempt <= self.throttles_before_success:
                headers = {}
                if self.retry_after is not None:
                    headers["Retry-After"] = self.retry_after
                return Response(body='{"error": "throttled"}', status=429, headers=headers)
            return Response(body='{"queued": 1}', status=202, headers={})

    def test_throttled_requests_retry_until_admitted(self):
        from repro.workloads import ServiceWorkload

        workload = ServiceWorkload(
            clients=1, requests_per_client=1, backoff_base=0.001, backoff_cap=0.01
        )
        client = self._ThrottlingClient(throttles_before_success=3)
        report = workload.run(client)
        assert report.errors == 0
        assert report.throttles == 3
        assert report.requests == 1
        assert len(report.latencies) == 1  # backoff sleeps are not latency samples

    def test_retry_budget_exhaustion_is_an_error_not_a_hang(self):
        from repro.workloads import ServiceWorkload

        workload = ServiceWorkload(
            clients=1,
            requests_per_client=1,
            max_retries=2,
            backoff_base=0.001,
            backoff_cap=0.01,
        )
        client = self._ThrottlingClient(throttles_before_success=100)
        report = workload.run(client)
        assert report.throttles == 2  # the budget, not 100
        assert report.errors == 1  # final attempt still throttled -> error

    def test_retry_after_header_floors_the_backoff_delay(self, monkeypatch):
        from repro import workloads
        from repro.workloads import ServiceWorkload

        sleeps = []
        monkeypatch.setattr(workloads.generator.time, "sleep", sleeps.append)
        workload = ServiceWorkload(
            clients=1, requests_per_client=1, backoff_base=0.0001, backoff_cap=2.0
        )
        client = self._ThrottlingClient(throttles_before_success=1, retry_after="0.75")
        report = workload.run(client)
        assert report.errors == 0
        assert sleeps == [0.75]  # the server hint beat the tiny schedule floor

    def test_backoff_cap_bounds_even_huge_retry_after(self, monkeypatch):
        from repro import workloads
        from repro.workloads import ServiceWorkload

        sleeps = []
        monkeypatch.setattr(workloads.generator.time, "sleep", sleeps.append)
        workload = ServiceWorkload(
            clients=1, requests_per_client=1, backoff_base=0.001, backoff_cap=0.5
        )
        client = self._ThrottlingClient(throttles_before_success=1, retry_after="3600")
        workload.run(client)
        assert sleeps == [0.5]  # one slow tenant never parks a thread for an hour

    def test_garbled_retry_after_falls_back_to_schedule(self):
        from repro.workloads import ServiceWorkload

        assert ServiceWorkload._retry_after({"Retry-After": "soon"}) == 0.0
        assert ServiceWorkload._retry_after({"retry-after": "1.5"}) == 1.5
        assert ServiceWorkload._retry_after({}) == 0.0
        assert ServiceWorkload._retry_after(None) == 0.0
