"""Tests for the benchmark workload generators."""

from __future__ import annotations

import ast

import pytest

from repro.workloads import (
    LoggingWorkload,
    PipelineWorkload,
    TrainingWorkload,
    VersionedScriptWorkload,
    populate_logs,
)


class TestLoggingWorkload:
    def test_populate_writes_expected_record_count(self, session):
        workload = LoggingWorkload(runs=2, loops_per_run=5, values_per_loop=3)
        written = workload.populate(session)
        assert written == workload.record_count == 30
        assert session.logs.count() == 30
        assert session.loops.count() == 10

    def test_populated_logs_are_queryable(self, session):
        populate_logs(session, runs=2, loops_per_run=3, values_per_loop=2)
        frame = session.dataframe("metric_0", "metric_1")
        assert len(frame) == 6
        assert frame["tstamp"].nunique() == 2


class TestTrainingWorkload:
    def test_instrumented_run_records_metrics(self, make_session):
        session = make_session("train")
        workload = TrainingWorkload(samples=120, epochs=2, batch_size=32)
        result = workload.run(session, use_flor=True)
        assert len(result.accuracies) == 2
        assert len(session.dataframe("acc")) == 2
        assert len(session.ts2vid.all(session.projid)) == 1

    def test_baseline_run_records_nothing(self, make_session):
        session = make_session("baseline")
        workload = TrainingWorkload(samples=120, epochs=2)
        workload.run(session, use_flor=False)
        assert session.logs.count() == 0


class TestVersionedScriptWorkload:
    def test_sources_parse_and_differ_across_versions(self):
        workload = VersionedScriptWorkload(versions=3)
        sources = [workload.source_for_version(v) for v in range(3)]
        for source in sources:
            ast.parse(source)
        assert len(set(sources)) == 3

    def test_hindsight_source_adds_weight_logging(self):
        workload = VersionedScriptWorkload(versions=3)
        assert "weight" not in workload.source_for_version(2)
        hindsight = workload.hindsight_source()
        ast.parse(hindsight)
        assert 'flor.log("weight"' in hindsight

    def test_record_all_versions_commits_each_version(self, make_session):
        session = make_session("versions")
        workload = VersionedScriptWorkload(versions=3, epochs=2, steps=2)
        vids = workload.record_all_versions(session)
        assert len(vids) == len(set(vids)) == 3
        assert len(session.ts2vid.all(session.projid)) == 3
        assert len(session.dataframe("loss")) == 3 * 2 * 2


class TestPipelineWorkload:
    def test_build_executor_runs_full_pipeline(self, make_session, tmp_path):
        session = make_session("pipe")
        workload = PipelineWorkload(documents=3, max_pages=4, epochs=1)
        executor, pipeline = workload.build_executor(session, tmp_path / "build")
        report = executor.build("run")
        assert report.executed == ["process_pdfs", "featurize", "train", "infer", "run"]
        assert pipeline.state.app is not None
        assert executor.build("run").executed == []
