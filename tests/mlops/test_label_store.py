"""Tests for the label-store role: provenance-aware labels."""

from __future__ import annotations

import pytest

from repro.mlops.label_store import SOURCE_HUMAN, SOURCE_MODEL, LabelStore


@pytest.fixture()
def store(session):
    return LabelStore(session, filename="labels.py")


class TestRecording:
    def test_record_human_labels(self, store, session):
        written = store.record_labels("a.pdf", {0: {"page_color": 0}, 1: {"page_color": 1}})
        assert written == 2
        frame = session.dataframe("page_color", "page_color__source")
        assert len(frame) == 2
        assert set(frame["page_color__source"].to_list()) == {SOURCE_HUMAN}

    def test_record_model_labels(self, store):
        store.record_model_labels("a.pdf", {0: {"page_color": 3}})
        labels = store.labels("page_color")
        assert labels[0].source == SOURCE_MODEL

    def test_labels_carry_entity_and_sub_entity(self, store):
        store.record_labels("report.pdf", {2: {"page_color": 5}})
        record = store.labels("page_color")[0]
        assert record.entity == "report.pdf"
        assert record.sub_entity == "2"
        assert record.value == 5


class TestResolution:
    def test_human_label_wins_over_model_label(self, store):
        store.record_model_labels("a.pdf", {0: {"page_color": 1}})
        store.record_labels("a.pdf", {0: {"page_color": 2}}, source=SOURCE_HUMAN)
        resolved = store.resolve("page_color", "a.pdf")
        assert resolved["0"].value == 2
        assert resolved["0"].source == SOURCE_HUMAN

    def test_newer_label_wins_within_same_source(self, store, session):
        store.record_labels("a.pdf", {0: {"page_color": 1}})
        session.commit("first labels")
        store.record_labels("a.pdf", {0: {"page_color": 7}})
        resolved = store.resolve("page_color", "a.pdf")
        assert resolved["0"].value == 7

    def test_resolution_is_per_entity(self, store):
        store.record_labels("a.pdf", {0: {"page_color": 1}})
        store.record_labels("b.pdf", {0: {"page_color": 9}})
        assert store.resolve("page_color", "a.pdf")["0"].value == 1
        assert store.resolve("page_color", "b.pdf")["0"].value == 9

    def test_resolve_unknown_entity_is_empty(self, store):
        assert store.resolve("page_color", "ghost.pdf") == {}


class TestCoverage:
    def test_coverage_counts_human_labelled_entities(self, store):
        store.record_labels("a.pdf", {0: {"page_color": 1}})
        store.record_model_labels("b.pdf", {0: {"page_color": 1}})
        coverage = store.coverage("page_color", ["a.pdf", "b.pdf", "c.pdf"])
        assert coverage["entities"] == 3
        assert coverage["human_labelled"] == 1
        assert coverage["coverage"] == pytest.approx(1 / 3)

    def test_coverage_with_no_entities(self, store):
        assert store.coverage("page_color", [])["coverage"] == 0.0
