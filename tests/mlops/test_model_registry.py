"""Tests for the model-registry role."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ml.mlp import MLPClassifier
from repro.mlops.model_registry import ModelRegistry


@pytest.fixture()
def registry(session):
    return ModelRegistry(session, filename="train.py")


def make_model(seed=0):
    return MLPClassifier(4, 2, hidden_sizes=(3,), seed=seed)


class TestRegistration:
    def test_register_stores_model_and_metrics(self, registry, session):
        registered = registry.register("clf", make_model(), {"acc": 0.8, "recall": 0.7})
        assert registered.metrics == {"acc": 0.8, "recall": 0.7}
        assert registry.list_models() == [(registered.tstamp, "clf")]
        frame = session.dataframe("acc", "recall", "model_name")
        assert frame.row(0)["model_name"] == "clf"

    def test_multiple_runs_registered_separately(self, registry, session):
        registry.register("clf", make_model(0), {"recall": 0.5})
        session.commit("run 1")
        registry.register("clf", make_model(1), {"recall": 0.9})
        session.commit("run 2")
        assert len(registry.list_models()) == 2


class TestSelection:
    def test_best_picks_highest_metric(self, registry, session):
        registry.register("clf", make_model(0), {"recall": 0.5})
        session.commit()
        registry.register("clf", make_model(1), {"recall": 0.9})
        session.commit()
        best = registry.best("recall")
        assert best["recall"] == 0.9

    def test_best_returns_none_without_runs(self, registry):
        assert registry.best("recall") is None

    def test_load_best_returns_model_with_best_weights(self, registry, session):
        weak = make_model(0)
        strong = make_model(1)
        registry.register("clf", weak, {"recall": 0.2})
        session.commit()
        registry.register("clf", strong, {"recall": 0.95})
        session.commit()
        loaded, row = registry.load_best("recall")
        assert row["recall"] == 0.95
        assert np.array_equal(loaded.state_dict()["layers.0.W"], strong.state_dict()["layers.0.W"])

    def test_metrics_frame_default_columns(self, registry, session):
        registry.register("clf", make_model(), {"acc": 0.7, "recall": 0.6})
        frame = registry.metrics_frame()
        assert "acc" in frame.columns and "recall" in frame.columns


class TestLoading:
    def test_load_roundtrips_state_dict(self, registry):
        model = make_model(3)
        registered = registry.register("clf", model, {"acc": 1.0})
        loaded = registry.load(registered.tstamp, "clf")
        assert isinstance(loaded, MLPClassifier)
        assert np.array_equal(loaded.state_dict()["layers.0.b"], model.state_dict()["layers.0.b"])

    def test_load_with_custom_factory(self, registry):
        model = make_model(5)
        registered = registry.register("clf", model, {"acc": 1.0})
        loaded = registry.load(registered.tstamp, "clf", model_factory=lambda: make_model(99))
        assert np.array_equal(loaded.state_dict()["layers.0.W"], model.state_dict()["layers.0.W"])

    def test_load_unknown_model_raises(self, registry):
        with pytest.raises(ReproError):
            registry.load("2020-01-01T00:00:00", "ghost")

    def test_register_plain_object_roundtrips(self, registry):
        payload = {"threshold": 0.5, "labels": ["a", "b"]}
        registered = registry.register("rules", payload, {"acc": 0.4})
        assert registry.load(registered.tstamp, "rules") == payload
