"""Tests for post-hoc governance enforcement."""

from __future__ import annotations

import pytest

from repro.errors import GovernanceError
from repro.mlops.governance import GovernancePolicy


@pytest.fixture()
def recorded_runs(session):
    """Three training runs, one of which used a poisoned dataset hash."""
    hashes = ["sha256:clean-1", "sha256:poisoned", "sha256:clean-2"]
    accuracies = [0.81, 0.99, 0.85]
    for dataset_hash, acc in zip(hashes, accuracies):
        session.log("dataset_hash", dataset_hash)
        for epoch in session.loop("epoch", range(2)):
            session.log("acc", acc - 0.01 * (1 - epoch))
        session.commit("training run")
    return session


class TestRuleAuthoring:
    def test_rule_requires_value_names(self, session):
        policy = GovernancePolicy(session)
        with pytest.raises(GovernanceError):
            policy.add_rule("empty", [], lambda row: None)


class TestEvaluation:
    def test_blocklist_rule_flags_poisoned_runs(self, recorded_runs):
        policy = GovernancePolicy(recorded_runs)
        policy.add_blocklist_rule("no-poisoned-data", "dataset_hash", ["sha256:poisoned"])
        report = policy.evaluate()
        assert not report.ok
        assert len(report.violations) == 1
        assert "poisoned" in report.violations[0].detail

    def test_range_rule_on_metrics(self, recorded_runs):
        policy = GovernancePolicy(recorded_runs)
        policy.add_range_rule("acc-sane", "acc", minimum=0.0, maximum=0.95)
        report = policy.evaluate()
        flagged = [v for v in report.violations if v.policy == "acc-sane"]
        assert len(flagged) == 2  # the 0.98 and 0.99 epochs of the poisoned run

    def test_required_rule_flags_missing_values(self, recorded_runs):
        # 'reviewer' was never logged: every pivot row should be flagged.
        policy = GovernancePolicy(recorded_runs)
        policy.add_required_rule("must-have-reviewer", "reviewer")
        report = policy.evaluate()
        assert not report.ok
        assert all(v.policy == "must-have-reviewer" for v in report.violations)

    def test_clean_history_passes(self, recorded_runs):
        policy = GovernancePolicy(recorded_runs)
        policy.add_blocklist_rule("no-poisoned-data", "dataset_hash", ["sha256:other"])
        policy.add_range_rule("acc-range", "acc", minimum=0.0, maximum=1.0)
        report = policy.evaluate()
        assert report.ok
        assert report.checked_rows > 0

    def test_violations_by_policy_counts(self, recorded_runs):
        policy = GovernancePolicy(recorded_runs)
        policy.add_blocklist_rule("blocklist", "dataset_hash", ["sha256:poisoned"])
        policy.add_range_rule("range", "acc", maximum=0.9)
        counts = policy.evaluate().violations_by_policy()
        assert counts["blocklist"] == 1
        assert counts["range"] >= 1

    def test_range_rule_rejects_non_numeric(self, recorded_runs):
        policy = GovernancePolicy(recorded_runs)
        policy.add_range_rule("hash-range", "dataset_hash", minimum=0)
        report = policy.evaluate()
        assert any("not numeric" in v.detail for v in report.violations)

    def test_empty_policy_evaluates_clean(self, session):
        assert GovernancePolicy(session).evaluate().ok


class TestEnforcement:
    def test_enforce_raises_on_violation(self, recorded_runs):
        policy = GovernancePolicy(recorded_runs)
        policy.add_blocklist_rule("no-poisoned-data", "dataset_hash", ["sha256:poisoned"])
        with pytest.raises(GovernanceError):
            policy.enforce()

    def test_enforce_passes_clean_history(self, recorded_runs):
        policy = GovernancePolicy(recorded_runs)
        policy.add_range_rule("acc-range", "acc", minimum=0.0, maximum=1.0)
        assert policy.enforce().ok
