"""Tests for CSV/JSONL exports and TensorBoard-style scalar export."""

from __future__ import annotations

import csv
import json

import pytest

from repro.mlops.export import dataframe_to_csv, dataframe_to_jsonl, export_scalars


@pytest.fixture()
def recorded(session):
    for run in range(2):
        for epoch in session.loop("epoch", range(3)):
            session.log("acc", 0.5 + run * 0.2 + epoch * 0.05)
        session.log("tags", ["nightly", f"run{run}"])
        session.commit(f"run {run}")
    return session


class TestCsvExport:
    def test_roundtrip_rows_and_header(self, recorded, tmp_path):
        frame = recorded.dataframe("acc")
        path = dataframe_to_csv(frame, tmp_path / "out" / "acc.csv")
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(frame)
        assert set(rows[0]) == set(frame.columns)
        assert rows[0]["acc"] == str(frame.row(0)["acc"])

    def test_nulls_and_lists_serialized(self, recorded, tmp_path):
        frame = recorded.dataframe("acc", "tags")
        path = dataframe_to_csv(frame, tmp_path / "mixed.csv")
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        # list-valued cells are JSON-encoded, missing cells are empty strings.
        assert any(row["tags"].startswith("[") or row["tags"] == "" for row in rows)


class TestJsonlExport:
    def test_one_object_per_row(self, recorded, tmp_path):
        frame = recorded.dataframe("acc")
        path = dataframe_to_jsonl(frame, tmp_path / "acc.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(frame)
        first = json.loads(lines[0])
        assert first["acc"] == frame.row(0)["acc"]


class TestScalarExport:
    def test_scalars_written_per_run_and_metric(self, recorded, tmp_path):
        written = export_scalars(recorded, ["acc"], tmp_path / "scalars")
        assert len(written) == 2  # one entry per run
        all_files = [f for files in written.values() for f in files]
        assert len(all_files) == 2
        payload = json.loads(open(all_files[0]).read())
        assert [point["step"] for point in payload] == [0, 1, 2]
        assert all("value" in point and "tstamp" in point for point in payload)

    def test_run_filter(self, recorded, tmp_path):
        from repro.mlops.metric_registry import MetricRegistry

        newest = MetricRegistry(recorded).runs("acc")[-1]
        written = export_scalars(recorded, ["acc"], tmp_path / "scalars", runs=[newest])
        assert list(written) == [newest]

    def test_unknown_metric_writes_nothing(self, recorded, tmp_path):
        assert export_scalars(recorded, ["nope"], tmp_path / "scalars") == {}
