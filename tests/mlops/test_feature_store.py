"""Tests for the feature-store role."""

from __future__ import annotations

import pytest

from repro.mlops.feature_store import FeatureStore


@pytest.fixture()
def store(session):
    """Features logged for two documents across two runs, plus the store."""
    for doc in session.loop("document", ["a.pdf", "b.pdf"], filename="featurize.py"):
        for page in session.loop("page", range(2), filename="featurize.py"):
            session.log("word_count", 100 + page, filename="featurize.py")
            session.log("first_page", 1 if page == 0 else 0, filename="featurize.py")
    session.commit("featurize v1")
    for doc in session.loop("document", ["a.pdf", "b.pdf"], filename="featurize.py"):
        for page in session.loop("page", range(2), filename="featurize.py"):
            session.log("word_count", 200 + page, filename="featurize.py")
            session.log("first_page", 1 if page == 0 else 0, filename="featurize.py")
    session.commit("featurize v2")
    return FeatureStore(session)


class TestMaterialization:
    def test_materialize_latest_returns_current_feature_values(self, store):
        frame = store.materialize(["word_count", "first_page"])
        assert len(frame) == 4  # 2 docs × 2 pages, latest run only
        assert all(row["word_count"] >= 200 for row in frame.to_records())

    def test_materialize_all_history(self, store):
        frame = store.materialize(["word_count"], latest_only=False)
        assert len(frame) == 8

    def test_entities_lists_documents(self, store):
        assert set(store.entities(["word_count"])) == {"a.pdf", "b.pdf"}

    def test_feature_names_include_logged_names(self, store):
        assert {"word_count", "first_page"} <= set(store.feature_names())


class TestOnlineLookup:
    def test_get_features_for_entity(self, store):
        rows = store.get_features("a.pdf", ["word_count"])
        assert len(rows) == 2
        assert all(row["document_value"] == "a.pdf" for row in rows)
        assert all(row["word_count"] >= 200 for row in rows)

    def test_get_features_unknown_entity(self, store):
        assert store.get_features("missing.pdf", ["word_count"]) == []

    def test_get_features_unknown_feature(self, store):
        assert store.get_features("a.pdf", ["not_logged"]) == []


class TestWrites:
    def test_write_features_on_demand(self, store, session):
        store.write_features("c.pdf", {"word_count": 321}, sub_entity=0)
        rows = store.get_features("c.pdf", ["word_count"])
        assert len(rows) == 1
        assert rows[0]["word_count"] == 321

    def test_write_features_without_sub_entity(self, store):
        store.write_features("d.pdf", {"language": "en"})
        rows = store.get_features("d.pdf", ["language"])
        assert rows[0]["language"] == "en"
