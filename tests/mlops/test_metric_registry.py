"""Tests for the metric-registry role."""

from __future__ import annotations

import pytest

from repro.mlops.metric_registry import MetricRegistry, MetricSeries


@pytest.fixture()
def registry(session):
    """Two runs with per-epoch accuracy, the second one better."""
    for run in range(2):
        for epoch in session.loop("epoch", range(4)):
            session.log("acc", 0.5 + run * 0.2 + epoch * 0.05)
        session.commit(f"run {run}")
    return MetricRegistry(session)


class TestSeries:
    def test_runs_listed_in_order(self, registry, session):
        runs = registry.runs("acc")
        assert len(runs) == 2
        assert runs == sorted(runs)

    def test_series_defaults_to_latest_run(self, registry):
        series = registry.series("acc")
        assert len(series) == 4
        assert series.values[0] == pytest.approx(0.7)
        assert series.final == pytest.approx(0.85)
        assert series.steps == [0, 1, 2, 3]

    def test_series_for_specific_run(self, registry):
        first_run = registry.runs("acc")[0]
        series = registry.series("acc", tstamp=first_run)
        assert series.final == pytest.approx(0.65)
        assert series.best == pytest.approx(0.65)
        assert series.worst == pytest.approx(0.5)

    def test_series_for_unknown_metric_is_empty(self, registry):
        series = registry.series("not_logged")
        assert len(series) == 0
        assert series.final is None

    def test_sparkline_rendering(self, registry):
        series = registry.series("acc")
        spark = series.sparkline()
        assert len(spark) == 4
        assert spark[0] != spark[-1]  # increasing series spans the glyph range
        assert MetricSeries("x", "t").sparkline() == ""


class TestSummaries:
    def test_compare_runs_final_values(self, registry):
        frame = registry.compare_runs(["acc"])
        assert len(frame) == 2
        assert frame["acc"].to_list() == pytest.approx([0.65, 0.85])

    def test_summary_statistics(self, registry):
        summary = registry.summary("acc")
        assert summary["runs"] == 2
        assert summary["points"] == 8
        assert summary["best_final"] == pytest.approx(0.85)
        assert summary["worst_final"] == pytest.approx(0.65)

    def test_summary_of_unknown_metric(self, registry):
        summary = registry.summary("nope")
        assert summary["runs"] == 0
        assert summary["best_final"] is None

    def test_render_contains_value_and_sparkline(self, registry):
        rendered = registry.render("acc")
        assert "acc@" in rendered
        assert "0.85" in rendered
        assert registry.render("nope") == "nope: (no data)"
