"""Chaos-suite plumbing: every failing test prints its replay seed(s).

The fixtures here snapshot :mod:`repro.testing.chaos`'s recent-plan registry
before each test and, when the test fails, attach a ``chaos seeds`` report
section listing every :class:`~repro.testing.FaultPlan` built during the
test — each line ends with the ``REPRO_CHAOS_SEED=<seed>`` incantation that
replays the exact fault schedule.
"""

from __future__ import annotations

import pytest

from repro.testing import recent_mark, seeds_since


def pytest_runtest_setup(item):
    item._chaos_seed_mark = recent_mark()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        seeds = seeds_since(getattr(item, "_chaos_seed_mark", 0))
        if seeds:
            report.sections.append(("chaos seeds", "\n".join(seeds)))
