"""Cross-feature crash tests: faults landing where two subsystems meet.

Single-subsystem chaos is covered by the harness tests and the soak; these
scenarios aim at the seams the issue calls out — the version journal's
compaction racing a lease reclaim mid-backfill, and the background
flusher's backlog riding through a pool eviction.
"""

from __future__ import annotations

import json

import pytest

from repro import ProjectConfig, Session
from repro.jobs import (
    JobInterrupted,
    JobRunner,
    JobStore,
    directory_session_provider,
    execute_job,
)
from repro.relational.database import Database
from repro.service import FlorService
from repro.testing import (
    AckLedger,
    FaultPlan,
    ManualClock,
    assert_invariants,
    check_no_lost_rows,
    check_single_replay,
    chaos_shard_factory,
)
from repro.testing.soak import AGENT_NAMES
from repro.versioning.repository import Repository
from repro.webapp.framework import TestClient
from repro.workloads import AgentSessionWorkload, BackfillJobWorkload

WORKLOAD = BackfillJobWorkload(projects=1, versions=3, epochs=2, steps=1)


class TestCompactionVersusLeaseReclaim:
    def test_reclaimed_backfill_stays_exactly_once_across_compaction(
        self, tmp_path, monkeypatch
    ):
        """Journal compaction between a crash and its lease reclaim must not
        confuse the resumed backfill: checkpoints are honoured (no version
        replays twice) and the compacted history stays complete."""
        monkeypatch.setattr(Repository, "COMPACT_EVERY", 2)
        root = tmp_path / "root"
        vids = WORKLOAD.populate(root)[WORKLOAD.project_names()[0]]
        name = WORKLOAD.project_names()[0]
        clock = ManualClock()
        with JobStore.open(root, lease_seconds=30.0, clock=clock) as store:
            job_id = WORKLOAD.submit_all(store)[0]
            claimed = store.claim("doomed")
            store.mark_running(job_id, "doomed")
            calls = {"n": 0}

            def die_after_one() -> bool:
                calls["n"] += 1
                return calls["n"] > 1

            with pytest.raises(JobInterrupted):
                execute_job(
                    claimed,
                    store,
                    directory_session_provider(root),
                    worker="doomed",
                    should_stop=die_after_one,
                )
            assert store.completed_versions(job_id) == {vids[0]}

            # While the dead worker's lease runs down, the tenant keeps
            # committing — enough to fold the journal into its snapshot.
            with Session(ProjectConfig(root / name, name)) as session:
                for round_ in range(3):
                    session.log("aside", round_)
                    session.commit(f"racing commit {round_}")
                more_vids = [c.vid for c in session.repository.log()]
            snapshot = json.loads(
                (ProjectConfig(root / name, name).objects_dir / "commits.json").read_text()
            )
            assert len(snapshot["commits"]) >= 2  # compaction folded mid-race

            clock.advance(31.0)  # lease lapses; no wall-clock sleep
            runner = JobRunner(
                store,
                directory_session_provider(root),
                workers=1,
                poll_interval=0.01,
            )
            assert runner.run_until_idle(timeout=60.0)
            job = store.require(job_id)
            assert job.state == "succeeded"
            kinds = [e.kind for e in store.events(job_id)]
            assert kinds.count("lease_reclaimed") == 1
            # Exactly-once across the reclaim: one checkpoint per original
            # version, none for the spectator commits.
            assert_invariants(check_single_replay(store.db))
            assert store.completed_versions(job_id) == set(vids)
            assert set(vids) <= set(more_vids)

        # Post-compaction history is still fully readable.
        with Session(ProjectConfig(root / name, name)) as session:
            log = session.repository.log()
            assert [c.vid for c in log[: len(vids)]] == vids
            assert len(session.dataframe("weight")) == WORKLOAD.expected_new_records


class TestBackpressureVersusEviction:
    def test_eviction_of_a_backlogged_shard_loses_no_acked_rows(self, tmp_path):
        """A capacity-1 pool thrashes shards while every write stalls; the
        eviction path must flush the backlog, not orphan it."""
        root = tmp_path / "root"
        plan = FaultPlan(seed=4242, slow_rate=0.0, slow_seconds=0.002)
        # Force a stall on every flush transaction of the busy tenant so
        # its flusher is mid-backlog whenever the other tenant evicts it.
        plan.force("slow", "shard.busy.db.transaction", times=10_000)
        service = FlorService(
            root,
            pool_capacity=1,
            flush_size=8,
            flush_interval=None,
            shard_factory=chaos_shard_factory(root, plan, flush_size=8, flush_interval=None),
        )
        client = TestClient(service.app())
        ledger = AckLedger()
        workload = AgentSessionWorkload(sessions=4, turns_per_session=3, tag="bp")
        try:
            for index, payload in enumerate(workload.request_payloads()):
                # Alternate tenants: every other request evicts the one
                # whose flusher is still stalling through its backlog.
                project = "busy" if index % 2 == 0 else "bystander"
                response = client.post(f"/projects/{project}/logs", json_body=payload)
                assert response.status == 202
                for record in payload["records"]:
                    ledger.record(project, record["name"], [str(record["value"])])
            assert service.pool.stats.evictions > 4
            for project in ("busy", "bystander"):
                mark = ledger.mark(project)
                barrier = client.get(
                    f"/projects/{project}/dataframe?names={AGENT_NAMES}&primary=1"
                )
                assert barrier.ok
                stats = client.get(f"/projects/{project}/stats").json()
                assert stats["dropped_rows_total"] == 0
                ledger.seal_through(mark, project)
        finally:
            service.close()

        # Recovery read on the raw files: everything sealed is on disk.
        violations = []
        for project in ("busy", "bystander"):
            db = Database(ProjectConfig(root / project, project).db_path)
            try:
                violations += check_no_lost_rows(db, ledger, project)
            finally:
                db.close()
        assert_invariants(violations, plan)
