"""Tier-1 chaos smoke: a short in-process soak and one real SIGKILL crash.

The full-length soak lives in ``benchmarks/bench_t13_chaos_soak.py``; these
runs are scaled to keep the tier-1 suite fast while still exercising every
moving part — fault-wrapped shards, the seal protocol, backfill under a
skewed lease clock, recovery, and the invariant checkers.
"""

from __future__ import annotations

from urllib.parse import quote

from repro.testing import (
    AckLedger,
    ChaosSoak,
    FaultPlan,
    ServerProcess,
    assert_invariants,
)


class TestMiniSoak:
    def test_invariants_hold_under_mixed_faults(self, tmp_path):
        plan = FaultPlan(
            seed=20260808,
            locked_rate=0.05,
            slow_rate=0.05,
            skew_rate=0.2,
            slow_seconds=0.001,
            max_skew_seconds=10.0,
        )
        soak = ChaosSoak(
            tmp_path / "root",
            plan,
            cycles=1,
            cycle_seconds=0.5,
            agent_tenants=1,
            fanout_tenants=2,
            ingest_threads=1,
            pool_capacity=3,
        )
        report = soak.run()
        assert_invariants(report.violations, plan)
        assert report.cycles == 1
        assert report.requests > 0
        assert report.sealed_rows > 0
        # Faults actually fired; this was not a fair-weather pass.
        assert sum(report.fault_stats["checked"].values()) > 0

    def test_soak_without_faults_never_repairs(self, tmp_path):
        plan = FaultPlan(seed=5)
        soak = ChaosSoak(
            tmp_path / "root",
            plan,
            cycles=1,
            cycle_seconds=0.3,
            agent_tenants=1,
            fanout_tenants=1,
            ingest_threads=1,
            backfill=False,
            pool_capacity=2,
        )
        report = soak.run()
        assert_invariants(report.violations, plan)
        assert report.resubmitted_batches == 0
        assert report.request_errors == 0


def _post_metrics(server: ServerProcess, project: str, values: list[str]) -> None:
    server.post(
        f"/projects/{project}/logs",
        {
            "filename": "train.py",
            "records": [
                {"name": "metric", "value": value, "ctx_id": 0} for value in values
            ],
        },
    )


def _stored_values(server: ServerProcess, project: str) -> set[str]:
    query = quote("SELECT value FROM logs WHERE value_name = 'metric'")
    body = server.get(f"/projects/{project}/sql?q={query}")
    return {str(record["value"]) for record in body["records"]}


class TestSigkillRecovery:
    def test_sealed_rows_survive_a_kill9(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        ledger = AckLedger()
        project = "alpha"
        with ServerProcess(root) as server:
            for batch in range(3):
                values = [f"b{batch}.r{r}" for r in range(4)]
                _post_metrics(server, project, values)
                ledger.record(project, "metric", values)
            # Seal protocol, as a real client runs it: mark, barrier read,
            # drop-counter unchanged across the read.
            mark = ledger.mark(project)
            before = server.get(f"/projects/{project}/stats")["dropped_rows_total"]
            server.get(f"/projects/{project}/dataframe?names=metric&primary=1")
            after = server.get(f"/projects/{project}/stats")["dropped_rows_total"]
            assert before == after == 0
            ledger.seal_through(mark, project)
            # Acked but never sealed: the crash may legitimately eat these.
            _post_metrics(server, project, ["unsealed.0"])
            ledger.record(project, "metric", ["unsealed.0"])
            server.kill9(barrier="after_seal")
            assert not server.alive()

        with ServerProcess(root) as restarted:
            recovery = restarted.wait_healthy(projects=(project,))
            stored = _stored_values(restarted, project)
            sealed = ledger.sealed_values(project, "metric")
            assert sealed <= stored, f"lost after kill9: {sorted(sealed - stored)}"
            # The client's at-least-once leg: resubmit whatever was never
            # sealed, then verify nothing is missing at all.
            for name, values in ledger.forget_unsealed(project):
                _post_metrics(restarted, project, list(values))
            restarted.get(f"/projects/{project}/dataframe?names=metric&primary=1")
            assert "unsealed.0" in _stored_values(restarted, project)
            assert recovery < 30.0
            restarted.terminate()

    def test_kill_at_barrier_names_the_crash_site(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        with ServerProcess(root) as server:
            _post_metrics(server, "alpha", ["x"])
            server.kill_at(
                "first_row_visible",
                lambda: "x" in _stored_values(server, "alpha"),
                timeout=20.0,
            )
            assert server.killed_at == "first_row_visible"
            assert not server.alive()
        with ServerProcess(root) as restarted:
            restarted.wait_healthy(projects=("alpha",))
            # The row was visible to a reader pre-kill, hence durable.
            assert "x" in _stored_values(restarted, "alpha")
            restarted.terminate()
