"""QoS chaos: admission state rides the router, so worker kills don't reset it.

The fleet enforces admission at the router — workers are spawned without
QoS flags and trust it.  That placement is load-bearing under faults: a
SIGKILLed (and supervisor-restarted) worker must not reset admission
counters, reopen a throttled tenant's bucket, or start throttling a cold
tenant.  This test drives a hot/cold tenant pair through a real
``repro serve --workers 2`` subprocess, kills the worker owning the hot
tenant mid-traffic, and asserts the router's counters stay monotone.
"""

from __future__ import annotations

import json
import urllib.error

from repro.testing import FleetProcess

#: Tight rate for the hot tenant so a burst of posts hits 429 quickly;
#: everyone else falls through to the built-in unlimited policy.
POLICY = {"rules": [{"selector": "hot", "rate": 3.0, "burst": 2.0}]}


def _post(fleet: FleetProcess, project: str, tag: str):
    """One small append; returns None on success, the HTTPError on 4xx."""
    try:
        fleet.post(
            f"/projects/{project}/logs",
            {"records": [{"name": "metric", "value": tag, "ctx_id": 0}]},
        )
        return None
    except urllib.error.HTTPError as error:
        error.read()  # drain so the keep-alive connection can be reused
        return error


def _drive(fleet: FleetProcess, rounds: int, tag: str) -> tuple[int, int]:
    """Post ``rounds`` times to hot and cold; returns (hot_429s, cold_429s)."""
    hot_throttled = cold_throttled = 0
    for i in range(rounds):
        error = _post(fleet, "hot", f"{tag}.hot{i}")
        if error is not None:
            assert error.code == 429, f"hot tenant got {error.code}, expected 429"
            assert float(error.headers["Retry-After"]) > 0.0
            hot_throttled += 1
        error = _post(fleet, "cold", f"{tag}.cold{i}")
        if error is not None:
            cold_throttled += 1
    return hot_throttled, cold_throttled


def _qos(fleet: FleetProcess) -> dict:
    return fleet.get("/service/stats")["qos"]


class TestQosSurvivesWorkerKill:
    def test_admission_counters_monotone_across_worker_kill9(self, tmp_path):
        policy_file = tmp_path / "policy.json"
        policy_file.write_text(json.dumps(POLICY))
        root = tmp_path / "root"
        with FleetProcess(
            root, workers=2, extra_args=("--qos-policy", str(policy_file))
        ) as fleet:
            # Phase 1: hot gets throttled, cold sails through.
            hot_429s, cold_429s = _drive(fleet, rounds=8, tag="pre")
            assert hot_429s > 0, "hot tenant was never throttled"
            assert cold_429s == 0, "cold tenant was throttled"
            before = _qos(fleet)
            assert before["throttled"] >= hot_429s
            assert before["tenants"]["hot"]["throttled"] > 0
            assert before["tenants"]["cold"]["throttled"] == 0

            # Phase 2: SIGKILL the worker owning the hot tenant's shard.
            victim = fleet.resolve("hot")
            old_pid = fleet.kill_worker9(victim)
            recovery = fleet.wait_worker_recovered(victim, old_pid, timeout=60.0)
            assert recovery < 60.0
            assert fleet.worker_view(victim)["pid"] != old_pid

            # The restarted worker changed nothing about admission: the
            # router owned the state all along.
            after_kill = _qos(fleet)
            for key in ("admitted", "throttled", "rejected"):
                assert after_kill[key] >= before[key], (
                    f"{key} went backwards across the kill: "
                    f"{before[key]} -> {after_kill[key]}"
                )
            assert after_kill["generation"] == before["generation"]

            # Phase 3: same contract holds for fresh traffic — hot is still
            # rate-limited under the same policy, cold still never throttled.
            hot_429s2, cold_429s2 = _drive(fleet, rounds=8, tag="post")
            assert hot_429s2 > 0
            assert cold_429s2 == 0
            final = _qos(fleet)
            assert final["admitted"] > after_kill["admitted"]
            assert final["throttled"] >= after_kill["throttled"] + hot_429s2
            assert final["tenants"]["cold"]["throttled"] == 0

            assert fleet.terminate() == 0
