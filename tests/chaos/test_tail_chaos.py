"""Tail chaos: SIGKILL the owning worker mid-stream, reconnect, no gaps.

The in-process tests prove a tail survives shard eviction and drain
seals.  This one proves the last leg of the exactly-once story from the
docs: a *fleet worker dying mid-stream*.  The router deliberately does
not fail over mid-stream (it could re-frame rows the subscriber already
consumed); instead the relay ends cleanly, the subscriber keeps its
``Last-Event-ID`` cursor, and reconnects once the supervisor has
restarted the worker — the backfill resumes from the cursor with every
sealed row delivered exactly once.
"""

from __future__ import annotations

from urllib.parse import quote

from repro.fleet.transport import HttpClient
from repro.testing import FleetProcess


def _post_metrics(fleet: FleetProcess, project: str, values: list[str]) -> None:
    fleet.post(
        f"/projects/{project}/logs",
        {
            "filename": "train.py",
            "records": [
                {"name": "metric", "value": value, "ctx_id": 0} for value in values
            ],
        },
    )


def _seal(fleet: FleetProcess, project: str) -> None:
    """Force the async flusher to commit: primary-key dataframe read."""
    fleet.get(f"/projects/{project}/dataframe?names=metric&primary=1")


def _watermark(fleet: FleetProcess, project: str) -> int:
    query = quote("SELECT MAX(seq) AS max_seq FROM logs")
    body = fleet.get(f"/projects/{project}/sql?q={query}")
    return int(body["records"][0]["max_seq"])


class TestTailSurvivesWorkerKill:
    def test_reconnect_with_cursor_delivers_every_row_exactly_once(self, tmp_path):
        with FleetProcess(tmp_path / "root", workers=2) as fleet:
            project = "alpha"
            _post_metrics(fleet, project, [f"b0.r{r}" for r in range(8)])
            _seal(fleet, project)
            assert _watermark(fleet, project) == 8
            victim = fleet.resolve(project)

            seen: list[int] = []
            with HttpClient(fleet.base_url, timeout=10.0) as client:
                # Leg 1: stream through the router, consume a few events,
                # then SIGKILL the worker that owns the shard mid-stream.
                stream = client.stream(f"/projects/{project}/tail?keepalive=0.2")
                assert stream.ok
                sse = stream.sse()
                for event in sse.events(max_events=4, timeout=30):
                    seen.append(int(event.id))
                assert seen == [1, 2, 3, 4]

                old_pid = fleet.kill_worker9(victim)
                # The relay must end cleanly — whatever was already in
                # flight arrives, then EOF.  No exception, no retry that
                # could duplicate frames.
                for event in sse.events(timeout=30):
                    if event.event == "log":
                        seen.append(int(event.id))
                sse.close()

                recovery = fleet.wait_worker_recovered(victim, old_pid, timeout=60.0)
                assert recovery < 60.0
                assert fleet.resolve(project) == victim

                # More rows land after the restart; the shard file survived
                # the kill, so sequence numbers continue where they left off.
                _post_metrics(fleet, project, [f"b1.r{r}" for r in range(4)])
                _seal(fleet, project)
                assert _watermark(fleet, project) == 12

                # Leg 2: reconnect with the cursor.  The backfill starts at
                # seen[-1] + 1 — nothing replayed, nothing skipped.
                stream = client.stream(
                    f"/projects/{project}/tail?keepalive=0.2",
                    headers={"Last-Event-ID": str(seen[-1])},
                )
                assert stream.ok
                sse = stream.sse()
                for event in sse.events(max_events=12 - len(seen), timeout=30):
                    seen.append(int(event.id))
                sse.close()

            assert seen == list(range(1, 13)), f"gap or duplicate in {seen}"
            assert fleet.terminate() == 0
