"""Randomized property tests for :class:`TieredBlobStore`.

The property under test is the tiering contract: an interleaving of puts,
reads, ``gc --tier-cold``-style archive passes, deletes and reopens never
loses a readable blob — every id that was put and not deleted returns its
exact bytes, from whichever tier holds it.  Schedules are driven by a
seeded RNG; failures print the seed (via the chaos conftest and in the
assertion message) so any run can be replayed with ``REPRO_CHAOS_SEED``.
"""

from __future__ import annotations

import os
import random
import threading

import pytest

from repro.errors import ObjectNotFoundError
from repro.storage.tiering import TieredBlobStore, select_cold_ids
from repro.testing import FaultPlan
from repro.testing.chaos import SEED_ENV_VAR
from repro.versioning.objects import ObjectStore


def _resolve_seed(default: int) -> int:
    """Honor ``REPRO_CHAOS_SEED`` so a printed failure seed replays exactly."""
    return int(os.environ.get(SEED_ENV_VAR, default))


def _open(tmp_path, cache_bytes: int = 256) -> TieredBlobStore:
    # A tiny cache budget forces archive reads through real pack seeks.
    return TieredBlobStore(
        ObjectStore(tmp_path / "objects"), tmp_path / "archive", cache_bytes=cache_bytes
    )


class TestRandomInterleavings:
    @pytest.mark.parametrize("base_seed", [1, 1729, 20260808])
    def test_random_interleaving_never_loses_a_readable_blob(self, tmp_path, base_seed):
        seed = _resolve_seed(base_seed)
        # Registering the plan is what routes the seed into the failure
        # report; the schedule itself draws from a plain seeded RNG.
        plan = FaultPlan(seed=seed)
        rng = random.Random(seed)
        store = _open(tmp_path)

        model: dict[str, bytes] = {}  # id -> bytes for every live blob
        commits: list[dict] = []  # synthetic journal driving cold selection
        working: dict[str, str] = {}  # filename -> id, snapshotted per commit
        counter = 0

        def check(object_id: str, context: str) -> None:
            assert store.exists(object_id), f"[{plan.describe()}] {context}: {object_id} vanished"
            data = store.get(object_id)
            assert data == model[object_id], (
                f"[{plan.describe()}] {context}: {object_id} returned wrong bytes"
            )

        for step in range(400):
            op = rng.choices(
                ("put", "get", "commit", "gc", "archive", "delete", "reopen", "verify"),
                weights=(30, 25, 10, 8, 6, 10, 4, 2),
            )[0]
            if op == "put":
                if model and rng.random() < 0.2:  # duplicate content put
                    data = rng.choice(list(model.values()))
                else:
                    counter += 1
                    data = f"blob {counter} seed {seed}\n".encode() * rng.randint(1, 9)
                object_id = store.put(data)
                model[object_id] = data
                working[f"file_{rng.randint(0, 9)}.py"] = object_id
            elif op == "get" and model:
                check(rng.choice(list(model)), f"step {step} get")
            elif op == "commit" and working:
                commits.append({"files": dict(working)})
            elif op == "gc" and commits:
                # The repro gc --tier-cold composition: journal -> cold set.
                _, cold = select_cold_ids(commits, keep_epochs=rng.randint(0, 3))
                store.archive(cold & set(model))
            elif op == "archive" and model:
                store.archive(rng.sample(list(model), k=rng.randint(1, min(4, len(model)))))
            elif op == "delete" and model:
                victim = rng.choice(list(model))
                assert store.delete(victim), f"[{plan.describe()}] delete lost {victim}"
                del model[victim]
                working = {name: oid for name, oid in working.items() if oid != victim}
            elif op == "reopen":
                store = _open(tmp_path)  # archive index must survive a reopen
            elif op == "verify":
                bad = store.verify()
                assert not bad, f"[{plan.describe()}] corrupt archived ids: {bad}"
            if model and step % 7 == 0:
                check(rng.choice(list(model)), f"step {step} sweep")

        for object_id in model:
            check(object_id, "final sweep")
        assert set(store.ids()) == set(model), f"[{plan.describe()}] ids() drifted from model"
        assert store.verify() == []

    def test_reader_crossing_an_archive_pass_falls_through_to_the_pack(self, tmp_path):
        """Deterministic replay of the hot-read race: a reader passes the
        hot ``exists`` check, then an archive pass deletes the hot copy
        before the read lands.  The read must fall through to the archive
        (whose index was durably written first), not raise."""
        store = _open(tmp_path)
        reader_entered = threading.Event()
        archive_done = threading.Event()
        reader_ident: list[int] = []
        inner = store.hot

        class StallingHot:
            """Hot store that parks the reader thread mid-``get``."""

            def get(self, object_id: str) -> bytes:
                if threading.get_ident() in reader_ident:
                    reader_entered.set()
                    archive_done.wait(timeout=10.0)
                return inner.get(object_id)

            def __getattr__(self, name):
                return getattr(inner, name)

        store.hot = StallingHot()
        object_id = store.put(b"crossing the tiers")
        outcome: list[bytes | Exception] = []

        def read() -> None:
            reader_ident.append(threading.get_ident())
            try:
                outcome.append(store.get(object_id))
            except Exception as exc:  # noqa: BLE001 - the failure under test
                outcome.append(exc)

        reader = threading.Thread(target=read)
        reader.start()
        assert reader_entered.wait(timeout=10.0)
        assert store.archive([object_id]) == 1  # hot copy is gone now
        archive_done.set()
        reader.join(timeout=10.0)
        assert outcome == [b"crossing the tiers"]

    def test_concurrent_archival_never_breaks_readers(self, tmp_path):
        """Readers racing an archiver must never observe a missing blob: the
        hot copy disappears only after the archive index durably has it."""
        seed = _resolve_seed(906090)
        plan = FaultPlan(seed=seed)
        store = _open(tmp_path)
        blobs = {store.put(f"hot {i} seed {seed}\n".encode() * (i % 5 + 1)): i for i in range(48)}
        ids = list(blobs)
        errors: list[str] = []
        stop = threading.Event()

        def reader(worker_seed: int) -> None:
            rng = random.Random(worker_seed)
            while not stop.is_set():
                object_id = rng.choice(ids)
                try:
                    data = store.get(object_id)
                except ObjectNotFoundError as exc:
                    errors.append(f"reader lost {object_id}: {exc}")
                    return
                if not data.startswith(b"hot "):
                    errors.append(f"reader got wrong bytes for {object_id}")
                    return

        def archiver() -> None:
            rng = random.Random(seed)
            while not stop.is_set():
                store.archive(rng.sample(ids, k=6))

        threads = [threading.Thread(target=reader, args=(seed + i,)) for i in range(3)]
        threads.append(threading.Thread(target=archiver))
        for thread in threads:
            thread.start()
        store.archive(ids[:12])  # main thread joins the race too
        import time

        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors, f"[{plan.describe()}] {errors[:3]}"
        for object_id in ids:
            assert store.get(object_id).startswith(b"hot ")
        assert store.verify() == []
