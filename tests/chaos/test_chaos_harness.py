"""Unit tests for the chaos core: plans, clocks, fault wrappers, ledger."""

from __future__ import annotations

import sqlite3

import pytest

from repro import ProjectConfig, Session
from repro.errors import DatabaseError
from repro.relational.database import Database
from repro.testing import (
    SEED_ENV_VAR,
    AckLedger,
    FaultPlan,
    ManualClock,
    SkewedClock,
    recent_mark,
    seeds_since,
)
from repro.storage import FaultyBlobStore, FaultyRelationalStore
from repro.storage.memory import MemoryBlobStore


class TestFaultPlan:
    def test_same_seed_same_schedule_per_site(self):
        decisions = [
            [
                FaultPlan(seed=42, locked_rate=0.5).decide("locked", "db.write")
                for _ in range(1)
            ]
        ]
        plan_a = FaultPlan(seed=42, locked_rate=0.5)
        plan_b = FaultPlan(seed=42, locked_rate=0.5)
        site = "db.write"
        assert [plan_a.decide("locked", site) for _ in range(64)] == [
            plan_b.decide("locked", site) for _ in range(64)
        ]
        del decisions

    def test_sites_draw_from_independent_streams(self):
        plan_a = FaultPlan(seed=7, locked_rate=0.5)
        plan_b = FaultPlan(seed=7, locked_rate=0.5)
        # Interleave foreign-site draws on plan_b only: site "x" must see
        # the same decision sequence regardless.
        expected = [plan_a.decide("locked", "x") for _ in range(32)]
        observed = []
        for index in range(32):
            if index % 3 == 0:
                plan_b.decide("locked", "y")
                plan_b.decide("slow", "x")
            observed.append(plan_b.decide("locked", "x"))
        assert observed == expected

    def test_different_seeds_differ(self):
        site = "db.write"
        schedule = lambda seed: [  # noqa: E731
            FaultPlan(seed=seed, locked_rate=0.5).decide("locked", site)
            for _ in range(64)
        ]
        assert schedule(1) != schedule(2)

    def test_force_fires_regardless_of_rate_and_suspension(self):
        plan = FaultPlan(seed=1, locked_rate=0.0)
        plan.force("locked", "db.write", times=2)
        with plan.suspended():
            assert plan.decide("locked", "db.write") is True
        assert plan.decide("locked", "db.write") is True
        assert plan.decide("locked", "db.write") is False
        assert plan.fired["locked"] == 2

    def test_suspended_consumes_draws_without_firing(self):
        site = "db.write"
        reference = FaultPlan(seed=9, locked_rate=0.5)
        expected = [reference.decide("locked", site) for _ in range(20)]
        plan = FaultPlan(seed=9, locked_rate=0.5)
        with plan.suspended():
            for _ in range(10):
                assert plan.decide("locked", site) is False
        # Position advanced: decisions 10.. match the reference schedule.
        assert [plan.decide("locked", site) for _ in range(10)] == expected[10:]

    def test_unknown_kind_rejected(self):
        plan = FaultPlan(seed=1)
        with pytest.raises(ValueError):
            plan.decide("meteor", "site")
        with pytest.raises(ValueError):
            plan.force("meteor", "site")
        with pytest.raises(ValueError):
            FaultPlan(seed=1, locked_rate=1.5)

    def test_seed_from_environment(self, monkeypatch):
        monkeypatch.setenv(SEED_ENV_VAR, "31415")
        assert FaultPlan().seed == 31415

    def test_describe_carries_replay_incantation(self):
        plan = FaultPlan(seed=77, locked_rate=0.25)
        description = plan.describe()
        assert "seed=77" in description
        assert f"{SEED_ENV_VAR}=77" in description

    def test_recent_registry_reports_new_plans(self):
        mark = recent_mark()
        plan = FaultPlan(seed=123456)
        seeds = seeds_since(mark)
        assert any("123456" in line for line in seeds)
        assert plan.describe() in seeds

    def test_maybe_sleep_durations_are_seeded(self):
        naps_a, naps_b = [], []
        plan_a = FaultPlan(seed=5, slow_rate=1.0, slow_seconds=0.004, sleep=naps_a.append)
        plan_b = FaultPlan(seed=5, slow_rate=1.0, slow_seconds=0.004, sleep=naps_b.append)
        for _ in range(8):
            assert plan_a.maybe_sleep("io") is True
            plan_b.maybe_sleep("io")
        assert naps_a == naps_b
        assert all(0.002 <= nap <= 0.004 for nap in naps_a)

    def test_stats_count_checks_and_fires(self):
        plan = FaultPlan(seed=3, locked_rate=1.0)
        plan.decide("locked", "a")
        plan.decide("slow", "a")
        stats = plan.stats()
        assert stats["checked"]["locked"] == 1
        assert stats["fired"]["locked"] == 1
        assert stats["fired"]["slow"] == 0


class TestClocks:
    def test_manual_clock_only_moves_when_told(self):
        clock = ManualClock(start=500.0)
        assert clock() == 500.0
        clock.advance(12.5)
        assert clock() == 512.5
        assert clock() == 512.5

    def test_skewed_clock_bounds_and_determinism(self):
        base = ManualClock(start=1000.0)
        plan_a = FaultPlan(seed=11, skew_rate=1.0, max_skew_seconds=30.0)
        plan_b = FaultPlan(seed=11, skew_rate=1.0, max_skew_seconds=30.0)
        readings_a = [SkewedClock(plan_a, base=base)() for _ in range(16)]
        readings_b = [SkewedClock(plan_b, base=base)() for _ in range(16)]
        assert readings_a == readings_b
        assert all(970.0 <= reading <= 1030.0 for reading in readings_a)
        assert any(reading != 1000.0 for reading in readings_a)

    def test_skewed_clock_honest_when_rate_zero(self):
        base = ManualClock(start=1000.0)
        clock = SkewedClock(FaultPlan(seed=11, skew_rate=0.0), base=base)
        assert [clock() for _ in range(8)] == [1000.0] * 8


class TestFaultyRelationalStore:
    def test_transaction_fault_is_raw_operational_error(self, db):
        plan = FaultPlan(seed=1)
        store = FaultyRelationalStore(db, plan, site="t")
        plan.force("locked", "t.transaction")
        with pytest.raises(sqlite3.OperationalError, match="database is locked"):
            with store.transaction():
                pass
        # The fault fires before the backend is touched; the next attempt
        # goes through and the store is fully usable.
        with store.transaction() as connection:
            connection.execute(
                "INSERT INTO logs (projid, tstamp, filename, ctx_id, value_name, value, value_type) "
                "VALUES ('p', 't', 'f', 0, 'n', 'v', 1)"
            )
        assert store.count("logs") == 1

    def test_execute_fault_is_wrapped_database_error(self, db):
        plan = FaultPlan(seed=1)
        store = FaultyRelationalStore(db, plan, site="t")
        plan.force("locked", "t.execute")
        with pytest.raises(DatabaseError, match="database is locked"):
            store.execute("SELECT 1")

    def test_reads_never_fail_only_stall(self, db):
        naps = []
        plan = FaultPlan(seed=1, locked_rate=1.0, slow_rate=1.0, sleep=naps.append)
        store = FaultyRelationalStore(db, plan, site="t")
        assert store.query("SELECT 1") == [(1,)]
        assert store.query_one("SELECT 2") == (2,)
        assert naps  # stalled, but answered

    def test_session_flusher_absorbs_transient_write_faults(self, tmp_path):
        """A locked burst shorter than the retry budget loses nothing."""
        config = ProjectConfig(tmp_path / "p", "p").ensure_layout()
        plan = FaultPlan(seed=1)
        store = FaultyRelationalStore(Database(config.db_path), plan, site="s")
        session = Session(config, db=store, default_filename="train.py")
        session.log("metric", 0.5)
        plan.force("locked", "s.transaction", times=2)  # == default write_retries
        session.flush()
        assert store.count("logs") >= 1
        session.close()


class TestFaultyBlobStore:
    def test_puts_and_gets_stall_but_round_trip(self):
        naps = []
        plan = FaultPlan(seed=1, slow_rate=1.0, sleep=naps.append)
        store = FaultyBlobStore(MemoryBlobStore(), plan, site="b")
        object_id = store.put(b"payload")
        assert store.get(object_id) == b"payload"
        text_id = store.put_text("hello")
        assert store.get_text(text_id) == "hello"
        assert object_id in store
        assert len(store) == 2
        assert len(naps) == 4  # two puts + two gets
        assert store.delete(text_id) is True
        assert not store.exists(text_id)


class TestAckLedger:
    def test_seal_only_covers_batches_acked_before_mark(self):
        ledger = AckLedger()
        ledger.record("p", "m", ["1"])
        mark = ledger.mark("p")
        ledger.record("p", "m", ["2"])  # acked after the barrier began
        assert ledger.seal_through(mark, "p") == 1
        assert ledger.sealed_values("p", "m") == {"1"}
        assert ledger.unsealed("p") == [("m", ("2",))]

    def test_marks_are_per_project(self):
        ledger = AckLedger()
        ledger.record("p", "m", ["1"])
        ledger.record("q", "m", ["2"])
        ledger.seal_through(ledger.mark("p"), "p")
        assert ledger.sealed_values("q", "m") == set()
        assert ledger.counts() == {
            "batches": 2,
            "sealed_batches": 1,
            "sealed_rows": 1,
        }

    def test_forget_unsealed_returns_and_removes(self):
        ledger = AckLedger()
        ledger.record("p", "m", ["1"])
        ledger.seal_through(ledger.mark("p"), "p")
        ledger.record("p", "m", ["2"])
        ledger.record("p", "n", ["3"])
        forgotten = ledger.forget_unsealed("p")
        assert forgotten == [("m", ("2",)), ("n", ("3",))]
        assert ledger.unsealed("p") == []
        # Sealed history is untouched; repeated repairs find nothing new.
        assert ledger.sealed_values("p", "m") == {"1"}
        assert ledger.forget_unsealed("p") == []
