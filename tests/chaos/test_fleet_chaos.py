"""Fleet chaos: SIGKILL one worker mid-ingest, the fleet carries on.

The single-process kill9 test (``test_soak_smoke``) proves sealed rows
survive a server crash.  This one proves the *fleet* version of the same
contract: with two workers owning disjoint projects, killing one worker

* never touches the surviving worker's projects,
* is repaired by the supervisor (same worker id, new pid, same ring
  position — the router re-resolves to the restarted process),
* and loses at most unsealed buffers, which the client's at-least-once
  resubmit leg recovers — verified with the same :class:`AckLedger`
  invariants the T13 soak uses.
"""

from __future__ import annotations

import threading
import time
from urllib.parse import quote

from repro.testing import AckLedger, FleetProcess


def _post_metrics(fleet: FleetProcess, project: str, values: list[str]) -> None:
    fleet.post(
        f"/projects/{project}/logs",
        {
            "filename": "train.py",
            "records": [
                {"name": "metric", "value": value, "ctx_id": 0} for value in values
            ],
        },
    )


def _stored_values(fleet: FleetProcess, project: str) -> set[str]:
    query = quote("SELECT value FROM logs WHERE value_name = 'metric'")
    body = fleet.get(f"/projects/{project}/sql?q={query}")
    return {str(record["value"]) for record in body["records"]}


def _seal(fleet: FleetProcess, ledger: AckLedger, project: str) -> None:
    """The client seal protocol, verbatim, through the router proxy."""
    mark = ledger.mark(project)
    before = fleet.get(f"/projects/{project}/stats")["dropped_rows_total"]
    fleet.get(f"/projects/{project}/dataframe?names=metric&primary=1")
    after = fleet.get(f"/projects/{project}/stats")["dropped_rows_total"]
    assert before == after, f"rows dropped while sealing {project}"
    ledger.seal_through(mark, project)


class TestFleetWorkerKill:
    def test_sealed_rows_survive_a_worker_kill9(self, tmp_path):
        ledger = AckLedger()
        with FleetProcess(tmp_path / "root", workers=2) as fleet:
            placed = fleet.projects_on_distinct_workers(2)
            (victim_project, victim), (survivor_project, survivor) = placed.items()
            assert victim != survivor

            # Phase 1: acknowledged AND sealed batches on both workers.
            for batch in range(3):
                for project in (victim_project, survivor_project):
                    values = [f"{project}.b{batch}.r{r}" for r in range(4)]
                    _post_metrics(fleet, project, values)
                    ledger.record(project, "metric", values)
            for project in (victim_project, survivor_project):
                _seal(fleet, ledger, project)

            # Phase 2: an ingest stream is in flight against the victim's
            # project while the kill lands.  Acks recorded by the ledger;
            # everything past the seal mark is allowed to die with the
            # worker (and must be resubmitted below).
            stop = threading.Event()
            streamed: list[str] = []

            def ingest_stream() -> None:
                batch = 0
                while not stop.is_set() and batch < 200:
                    values = [f"{victim_project}.live{batch}.r{r}" for r in range(2)]
                    try:
                        _post_metrics(fleet, victim_project, values)
                    except Exception:
                        # A request caught mid-crash was never acked — the
                        # ledger must not record it as a durability promise.
                        batch += 1
                        continue
                    ledger.record(victim_project, "metric", values)
                    streamed.extend(values)
                    batch += 1

            streamer = threading.Thread(target=ingest_stream, daemon=True)
            streamer.start()
            time.sleep(0.2)  # let the stream get going: the kill is mid-ingest

            old_pid = fleet.kill_worker9(victim)
            recovery = fleet.wait_worker_recovered(victim, old_pid, timeout=60.0)
            stop.set()
            streamer.join(timeout=30)
            assert not streamer.is_alive()

            # The supervisor recycled the same identity: new pid, same ring
            # position, so the router resolves the project to victim again.
            view = fleet.worker_view(victim)
            assert view["pid"] != old_pid
            assert view["restarts"] >= 1
            assert fleet.resolve(victim_project) == victim
            assert recovery < 60.0

            # Sealed rows survived the kill on BOTH workers.
            for project in (victim_project, survivor_project):
                stored = _stored_values(fleet, project)
                sealed = ledger.sealed_values(project, "metric")
                assert sealed <= stored, (
                    f"lost sealed rows on {project}: {sorted(sealed - stored)}"
                )

            # The survivor never even noticed: zero restarts.
            assert fleet.worker_view(survivor)["restarts"] == 0

            # At-least-once leg: resubmit every unsealed batch, then seal
            # again — nothing may be missing anymore.
            for name, values in ledger.forget_unsealed(victim_project):
                _post_metrics(fleet, victim_project, list(values))
                ledger.record(victim_project, name, values)
            _seal(fleet, ledger, victim_project)
            stored = _stored_values(fleet, victim_project)
            sealed = ledger.sealed_values(victim_project, "metric")
            assert sealed <= stored
            assert set(streamed) <= stored

            assert fleet.terminate() == 0
