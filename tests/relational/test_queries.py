"""Tests for higher-level query shapes: dimensions, latest, git view."""

from __future__ import annotations

import pytest

from repro.dataframe import DataFrame
from repro.relational.queries import (
    AnnotatedLog,
    git_view,
    latest,
    long_format_frame,
    long_format_records,
)
from repro.relational.records import LogRecord, LoopRecord
from repro.versioning.repository import Repository


@pytest.fixture()
def populated_db(db):
    """Two nested loops (epoch > step) with logs at both levels."""
    from repro.relational.repositories import LogRepository, LoopRepository

    loops = LoopRepository(db)
    logs = LogRepository(db)
    loops.add_many(
        [
            LoopRecord("p", "t1", "train.py", 1, 0, "epoch", 0, "0"),
            LoopRecord("p", "t1", "train.py", 2, 1, "step", 0, "b0"),
            LoopRecord("p", "t1", "train.py", 3, 1, "step", 1, "b1"),
            LoopRecord("p", "t1", "train.py", 4, 0, "epoch", 1, "1"),
        ]
    )
    logs.add_many(
        [
            LogRecord.create("p", "t1", "train.py", 2, "loss", 0.9),
            LogRecord.create("p", "t1", "train.py", 3, "loss", 0.7),
            LogRecord.create("p", "t1", "train.py", 1, "acc", 0.5),
            LogRecord.create("p", "t1", "train.py", 4, "acc", 0.6),
            LogRecord.create("p", "t1", "train.py", 0, "lr", 0.01),
        ]
    )
    return db


class TestLongFormat:
    def test_dimensions_follow_loop_ancestry(self, populated_db):
        records = long_format_records(populated_db, "p", ["loss"])
        assert len(records) == 2
        first = records[0]
        assert first.dimensions == {"epoch": 0, "step": 0}
        assert first.dimension_values == {"epoch_value": "0", "step_value": "b0"}
        assert first.depth == 2

    def test_top_level_log_has_no_dimensions(self, populated_db):
        records = long_format_records(populated_db, "p", ["lr"])
        assert records[0].dimensions == {}
        assert records[0].depth == 0

    def test_all_names_returned_when_unfiltered(self, populated_db):
        names = {r.value_name for r in long_format_records(populated_db, "p")}
        assert names == {"loss", "acc", "lr"}

    def test_long_format_frame_has_dimension_columns(self, populated_db):
        frame = long_format_frame(populated_db, "p", ["loss"])
        assert isinstance(frame, DataFrame)
        assert "epoch" in frame.columns and "step" in frame.columns
        assert len(frame) == 2

    def test_values_are_decoded(self, populated_db):
        records = long_format_records(populated_db, "p", ["acc"])
        assert {r.value for r in records} == {0.5, 0.6}

    def test_as_row_contains_identity_and_dims(self, populated_db):
        record = long_format_records(populated_db, "p", ["loss"])[0]
        row = record.as_row()
        assert row["filename"] == "train.py"
        assert row["value_name"] == "loss"
        assert row["epoch"] == 0


class TestPushdown:
    def test_value_names_filter_returns_strict_subset(self, populated_db):
        """A names filter narrows both the records and the fetched ancestry."""
        everything = long_format_records(populated_db, "p")
        only_loss = long_format_records(populated_db, "p", ["loss"])
        assert {r.value_name for r in only_loss} == {"loss"}
        assert 0 < len(only_loss) < len(everything)
        # Pushdown must not change annotation: same records, same dimensions.
        by_key = {(r.tstamp, r.ctx_id, r.value_name): r for r in everything}
        for record in only_loss:
            full = by_key[(record.tstamp, record.ctx_id, record.value_name)]
            assert record.dimensions == full.dimensions
            assert record.dimension_values == full.dimension_values

    def test_empty_value_names_returns_nothing(self, populated_db):
        assert long_format_records(populated_db, "p", []) == []

    def test_tstamp_range_bounds_are_inclusive(self, db):
        from repro.relational.repositories import LogRepository

        logs = LogRepository(db)
        for tstamp in ("t1", "t2", "t3"):
            logs.add(LogRecord.create("p", tstamp, "train.py", 0, "m", 1.0))
        assert {r.tstamp for r in long_format_records(db, "p", tstamp_range=("t2", None))} == {"t2", "t3"}
        assert {r.tstamp for r in long_format_records(db, "p", tstamp_range=(None, "t2"))} == {"t1", "t2"}
        assert {r.tstamp for r in long_format_records(db, "p", tstamp_range=("t2", "t2"))} == {"t2"}

    def test_seq_bounds_select_the_append_delta(self, db):
        from repro.relational.queries import log_watermark
        from repro.relational.repositories import LogRepository

        logs = LogRepository(db)
        logs.add(LogRecord.create("p", "t1", "train.py", 0, "m", 1.0))
        watermark = log_watermark(db, "p")
        logs.add(LogRecord.create("p", "t2", "train.py", 0, "m", 2.0))
        delta = long_format_records(db, "p", min_seq=watermark)
        assert [r.value for r in delta] == [2.0]
        upto = long_format_records(db, "p", max_seq=watermark)
        assert [r.value for r in upto] == [1.0]

    def test_run_keys_restrict_to_named_runs(self, db):
        from repro.relational.repositories import LogRepository

        logs = LogRepository(db)
        logs.add(LogRecord.create("p", "t1", "train.py", 0, "m", 1.0))
        logs.add(LogRecord.create("p", "t1", "infer.py", 0, "m", 2.0))
        logs.add(LogRecord.create("p", "t2", "train.py", 0, "m", 3.0))
        records = long_format_records(db, "p", run_keys=[("t1", "train.py")])
        assert [(r.tstamp, r.filename) for r in records] == [("t1", "train.py")]

    def test_empty_run_keys_returns_nothing(self, db):
        """Regression: [] must select nothing, not emit 'IN (VALUES )'."""
        from repro.relational.repositories import LogRepository

        LogRepository(db).add(LogRecord.create("p", "t1", "train.py", 0, "m", 1.0))
        assert long_format_records(db, "p", run_keys=[]) == []


class TestAncestryCycles:
    def test_loop_ancestry_terminates_on_parent_cycle(self, db):
        """A corrupted parent chain (a cycle) must not hang or recurse forever."""
        from repro.relational.repositories import LogRepository, LoopRepository

        loops = LoopRepository(db)
        loops.add_many(
            [
                LoopRecord("p", "t1", "train.py", 1, 2, "outer", 0, "a"),
                LoopRecord("p", "t1", "train.py", 2, 1, "inner", 0, "b"),
            ]
        )
        LogRepository(db).add(LogRecord.create("p", "t1", "train.py", 2, "m", 1.0))
        records = long_format_records(db, "p", ["m"])
        assert len(records) == 1
        # Each context contributes exactly once despite the cycle.
        assert records[0].dimensions == {"outer": 0, "inner": 0}

    def test_self_parent_counts_once(self, db):
        from repro.relational.repositories import LogRepository, LoopRepository

        LoopRepository(db).add(LoopRecord("p", "t1", "train.py", 1, 1, "loop", 3, "x"))
        LogRepository(db).add(LogRecord.create("p", "t1", "train.py", 1, "m", 1.0))
        records = long_format_records(db, "p", ["m"])
        assert records[0].dimensions == {"loop": 3}


class TestWatermarks:
    def test_watermarks_start_at_zero_and_grow(self, db):
        from repro.relational.queries import (
            log_watermark,
            loop_watermark,
            runs_touched_since,
        )
        from repro.relational.repositories import LogRepository, LoopRepository

        assert log_watermark(db, "p") == 0
        assert loop_watermark(db, "p") == 0
        LogRepository(db).add(LogRecord.create("p", "t1", "train.py", 0, "m", 1.0))
        LoopRepository(db).add(LoopRecord("p", "t1", "train.py", 1, 0, "epoch", 0, "0"))
        assert log_watermark(db, "p") == 1
        first_loop = loop_watermark(db, "p")
        assert first_loop >= 1
        assert runs_touched_since(db, "p", 0) == {("t1", "train.py")}
        assert runs_touched_since(db, "p", first_loop) == set()

    def test_replace_advances_the_loop_watermark(self, db):
        """INSERT OR REPLACE rewrites under a fresh rowid — the cache's signal."""
        from repro.relational.queries import loop_watermark, runs_touched_since
        from repro.relational.repositories import LoopRepository

        loops = LoopRepository(db)
        loops.add(LoopRecord("p", "t1", "train.py", 1, 0, "epoch", 0, "before"))
        watermark = loop_watermark(db, "p")
        loops.add(LoopRecord("p", "t1", "train.py", 1, 0, "epoch", 0, "after"))
        assert loop_watermark(db, "p") > watermark
        assert runs_touched_since(db, "p", watermark) == {("t1", "train.py")}


class TestLatest:
    def test_latest_keeps_only_max_tstamp_rows(self):
        frame = DataFrame({"tstamp": ["t1", "t2", "t2"], "v": [1, 2, 3]})
        result = latest(frame)
        assert len(result) == 2
        assert set(result["v"].to_list()) == {2, 3}

    def test_latest_on_empty_or_missing_column(self):
        assert latest(DataFrame()).empty
        frame = DataFrame({"v": [1]})
        assert latest(frame).equals(frame)

    def test_latest_on_empty_frame_with_column_present(self):
        frame = DataFrame({"tstamp": [], "v": []})
        assert latest(frame).empty

    def test_latest_when_all_tstamps_are_null(self):
        frame = DataFrame({"tstamp": [None, None], "v": [1, 2]})
        result = latest(frame)
        assert result.equals(frame)  # nothing to rank by; frame passes through

    def test_latest_on_alternate_column(self):
        frame = DataFrame({"epoch": [1, 3, 3], "v": [1, 2, 3]})
        result = latest(frame, column="epoch")
        assert set(result["v"].to_list()) == {2, 3}


class TestGitView:
    def test_git_view_lists_files_per_commit(self, tmp_path):
        repo = Repository(tmp_path / "objects", tmp_path)
        (tmp_path / "a.py").write_text("print('v1')\n")
        repo.track("a.py")
        first = repo.commit("v1")
        (tmp_path / "a.py").write_text("print('v2')\n")
        second = repo.commit("v2")
        frame = git_view(repo)
        assert set(frame.columns) == {"vid", "filename", "parent_vid", "contents"}
        assert len(frame) == 2
        rows = {r["vid"]: r for r in frame.to_records()}
        assert rows[first.vid]["parent_vid"] is None
        assert rows[second.vid]["parent_vid"] == first.vid
        assert "v2" in rows[second.vid]["contents"]
