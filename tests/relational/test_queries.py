"""Tests for higher-level query shapes: dimensions, latest, git view."""

from __future__ import annotations

import pytest

from repro.dataframe import DataFrame
from repro.relational.queries import (
    AnnotatedLog,
    git_view,
    latest,
    long_format_frame,
    long_format_records,
)
from repro.relational.records import LogRecord, LoopRecord
from repro.versioning.repository import Repository


@pytest.fixture()
def populated_db(db):
    """Two nested loops (epoch > step) with logs at both levels."""
    from repro.relational.repositories import LogRepository, LoopRepository

    loops = LoopRepository(db)
    logs = LogRepository(db)
    loops.add_many(
        [
            LoopRecord("p", "t1", "train.py", 1, 0, "epoch", 0, "0"),
            LoopRecord("p", "t1", "train.py", 2, 1, "step", 0, "b0"),
            LoopRecord("p", "t1", "train.py", 3, 1, "step", 1, "b1"),
            LoopRecord("p", "t1", "train.py", 4, 0, "epoch", 1, "1"),
        ]
    )
    logs.add_many(
        [
            LogRecord.create("p", "t1", "train.py", 2, "loss", 0.9),
            LogRecord.create("p", "t1", "train.py", 3, "loss", 0.7),
            LogRecord.create("p", "t1", "train.py", 1, "acc", 0.5),
            LogRecord.create("p", "t1", "train.py", 4, "acc", 0.6),
            LogRecord.create("p", "t1", "train.py", 0, "lr", 0.01),
        ]
    )
    return db


class TestLongFormat:
    def test_dimensions_follow_loop_ancestry(self, populated_db):
        records = long_format_records(populated_db, "p", ["loss"])
        assert len(records) == 2
        first = records[0]
        assert first.dimensions == {"epoch": 0, "step": 0}
        assert first.dimension_values == {"epoch_value": "0", "step_value": "b0"}
        assert first.depth == 2

    def test_top_level_log_has_no_dimensions(self, populated_db):
        records = long_format_records(populated_db, "p", ["lr"])
        assert records[0].dimensions == {}
        assert records[0].depth == 0

    def test_all_names_returned_when_unfiltered(self, populated_db):
        names = {r.value_name for r in long_format_records(populated_db, "p")}
        assert names == {"loss", "acc", "lr"}

    def test_long_format_frame_has_dimension_columns(self, populated_db):
        frame = long_format_frame(populated_db, "p", ["loss"])
        assert isinstance(frame, DataFrame)
        assert "epoch" in frame.columns and "step" in frame.columns
        assert len(frame) == 2

    def test_values_are_decoded(self, populated_db):
        records = long_format_records(populated_db, "p", ["acc"])
        assert {r.value for r in records} == {0.5, 0.6}

    def test_as_row_contains_identity_and_dims(self, populated_db):
        record = long_format_records(populated_db, "p", ["loss"])[0]
        row = record.as_row()
        assert row["filename"] == "train.py"
        assert row["value_name"] == "loss"
        assert row["epoch"] == 0


class TestLatest:
    def test_latest_keeps_only_max_tstamp_rows(self):
        frame = DataFrame({"tstamp": ["t1", "t2", "t2"], "v": [1, 2, 3]})
        result = latest(frame)
        assert len(result) == 2
        assert set(result["v"].to_list()) == {2, 3}

    def test_latest_on_empty_or_missing_column(self):
        assert latest(DataFrame()).empty
        frame = DataFrame({"v": [1]})
        assert latest(frame).equals(frame)


class TestGitView:
    def test_git_view_lists_files_per_commit(self, tmp_path):
        repo = Repository(tmp_path / "objects", tmp_path)
        (tmp_path / "a.py").write_text("print('v1')\n")
        repo.track("a.py")
        first = repo.commit("v1")
        (tmp_path / "a.py").write_text("print('v2')\n")
        second = repo.commit("v2")
        frame = git_view(repo)
        assert set(frame.columns) == {"vid", "filename", "parent_vid", "contents"}
        assert len(frame) == 2
        rows = {r["vid"]: r for r in frame.to_records()}
        assert rows[first.vid]["parent_vid"] is None
        assert rows[second.vid]["parent_vid"] == first.vid
        assert "v2" in rows[second.vid]["contents"]
