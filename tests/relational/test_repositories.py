"""Tests for the per-table repositories."""

from __future__ import annotations

import pytest

from repro.relational.records import (
    BuildDepRecord,
    LogRecord,
    LoopRecord,
    ObjectRecord,
    Ts2VidRecord,
)
from repro.relational.repositories import (
    BuildDepRepository,
    LogRepository,
    LoopRepository,
    ObjectRepository,
    Ts2VidRepository,
)


@pytest.fixture()
def log_repo(db):
    return LogRepository(db)


@pytest.fixture()
def loop_repo(db):
    return LoopRepository(db)


class TestLogRepository:
    def test_add_and_retrieve_in_insertion_order(self, log_repo):
        log_repo.add(LogRecord.create("p", "t1", "f.py", 1, "acc", 0.1))
        log_repo.add(LogRecord.create("p", "t1", "f.py", 1, "acc", 0.2))
        values = [r.decoded() for r in log_repo.all("p")]
        assert values == [0.1, 0.2]

    def test_by_names_filters(self, log_repo):
        log_repo.add_many(
            [
                LogRecord.create("p", "t", "f.py", 1, "acc", 0.5),
                LogRecord.create("p", "t", "f.py", 1, "loss", 1.5),
            ]
        )
        assert [r.value_name for r in log_repo.by_names("p", ["loss"])] == ["loss"]
        assert log_repo.by_names("p", []) == []

    def test_by_tstamp(self, log_repo):
        log_repo.add(LogRecord.create("p", "t1", "f.py", 1, "acc", 1))
        log_repo.add(LogRecord.create("p", "t2", "f.py", 1, "acc", 2))
        assert len(log_repo.by_tstamp("p", "t2")) == 1

    def test_distinct_names_and_tstamps(self, log_repo):
        log_repo.add_many(
            [
                LogRecord.create("p", "t1", "f.py", 1, "acc", 1),
                LogRecord.create("p", "t2", "f.py", 1, "acc", 2),
                LogRecord.create("p", "t2", "f.py", 1, "loss", 3),
            ]
        )
        assert log_repo.distinct_names("p") == ["acc", "loss"]
        assert log_repo.distinct_tstamps("p") == ["t1", "t2"]

    def test_projects_are_isolated(self, log_repo):
        log_repo.add(LogRecord.create("p1", "t", "f.py", 1, "acc", 1))
        log_repo.add(LogRecord.create("p2", "t", "f.py", 1, "acc", 2))
        assert len(log_repo.all("p1")) == 1
        assert log_repo.count() == 2


class TestLoopRepository:
    def test_add_and_query_by_context(self, loop_repo):
        loop_repo.add(LoopRecord("p", "t", "f.py", 1, 0, "epoch", 0, "0"))
        loop_repo.add(LoopRecord("p", "t", "f.py", 2, 1, "step", 0, "batch0"))
        records = loop_repo.by_context("p", "t", "f.py")
        assert [r.loop_name for r in records] == ["epoch", "step"]

    def test_get_specific_context(self, loop_repo):
        loop_repo.add(LoopRecord("p", "t", "f.py", 7, 0, "epoch", 3, "3"))
        record = loop_repo.get("p", "t", "f.py", 7)
        assert record is not None and record.loop_iteration == 3
        assert loop_repo.get("p", "t", "f.py", 99) is None

    def test_replace_on_same_primary_key(self, loop_repo):
        loop_repo.add(LoopRecord("p", "t", "f.py", 1, 0, "epoch", 0, "a"))
        loop_repo.add(LoopRecord("p", "t", "f.py", 1, 0, "epoch", 0, "b"))
        assert loop_repo.count() == 1
        assert loop_repo.get("p", "t", "f.py", 1).iteration_value == "b"


class TestTs2VidRepository:
    def test_add_latest_and_lookup(self, db):
        repo = Ts2VidRepository(db)
        repo.add(Ts2VidRecord("p", "2025-01-01T00:00:00", "2025-01-01T01:00:00", "v1"))
        repo.add(Ts2VidRecord("p", "2025-01-02T00:00:00", "2025-01-02T01:00:00", "v2", "run"))
        assert repo.latest("p").vid == "v2"
        assert repo.vid_for_tstamp("p", "2025-01-01T00:30:00") == "v1"
        assert repo.vid_for_tstamp("p", "1999-01-01T00:00:00") is None
        assert len(repo.all("p")) == 2


class TestObjectRepository:
    def test_put_get_and_overwrite(self, db):
        repo = ObjectRepository(db)
        key = dict(projid="p", tstamp="t", filename="f.py", ctx_id=1, value_name="ckpt::epoch")
        repo.put(ObjectRecord(**key, contents=b"one"))
        repo.put(ObjectRecord(**key, contents=b"two"))
        assert repo.get(**key).contents == b"two"
        assert repo.count() == 1

    def test_list_keys_filtered_by_tstamp(self, db):
        repo = ObjectRepository(db)
        repo.put(ObjectRecord("p", "t1", "f.py", 1, "ckpt::epoch", b"x"))
        repo.put(ObjectRecord("p", "t2", "f.py", 1, "ckpt::epoch", b"y"))
        assert len(repo.list_keys("p")) == 2
        assert len(repo.list_keys("p", "t1")) == 1

    def test_get_missing_returns_none(self, db):
        repo = ObjectRepository(db)
        assert repo.get("p", "t", "f.py", 1, "nope") is None


class TestBuildDepRepository:
    def test_add_and_query_by_vid(self, db):
        repo = BuildDepRepository(db)
        repo.add_many(
            [
                BuildDepRecord("v1", "featurize", ("process_pdfs",), ("python featurize.py",)),
                BuildDepRecord("v1", "train", ("featurize",), ("python train.py",)),
            ]
        )
        records = repo.by_vid("v1")
        assert [r.target for r in records] == ["featurize", "train"]
        assert repo.by_vid("v2") == []

    def test_mark_cached(self, db):
        repo = BuildDepRepository(db)
        repo.add(BuildDepRecord("v1", "train", ("featurize",), ("python train.py",)))
        repo.mark_cached("v1", "train", True)
        assert repo.get("v1", "train").cached is True
