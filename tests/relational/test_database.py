"""Tests for the Database wrapper: transactions, queries, error mapping."""

from __future__ import annotations

import pytest

from repro.errors import DatabaseError
from repro.relational.database import Database


class TestLifecycle:
    def test_in_memory_database(self):
        with Database(":memory:") as db:
            assert db.count("logs") == 0

    def test_file_database_created_with_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "flor.db"
        with Database(path) as db:
            db.execute(
                "INSERT INTO logs (projid, tstamp, filename, ctx_id, value_name, value, value_type)"
                " VALUES ('p', 't', 'f', 0, 'n', 'v', 0)"
            )
        assert path.exists()
        # Re-opening sees the persisted row.
        with Database(path) as db:
            assert db.count("logs") == 1


class TestExecution:
    def test_execute_and_query(self, db):
        db.execute(
            "INSERT INTO logs (projid, tstamp, filename, ctx_id, value_name, value, value_type)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            ("p", "t", "f", 0, "acc", "0.5", 2),
        )
        rows = db.query("SELECT value_name, value FROM logs")
        assert rows == [("acc", "0.5")]

    def test_query_one_returns_none_for_empty(self, db):
        assert db.query_one("SELECT * FROM logs WHERE projid = ?", ("missing",)) is None

    def test_executemany_noop_on_empty(self, db):
        db.executemany("INSERT INTO meta (key, value) VALUES (?, ?)", [])
        assert db.query_one("SELECT COUNT(*) FROM meta")[0] == 1  # only schema_version

    def test_invalid_sql_raises_database_error(self, db):
        with pytest.raises(DatabaseError):
            db.execute("SELECT * FROM nonexistent_table")

    def test_count_unknown_table_raises(self, db):
        with pytest.raises(DatabaseError):
            db.count("nope")


class TestTransactions:
    def test_transaction_commits_on_success(self, db):
        with db.transaction() as conn:
            conn.execute(
                "INSERT INTO logs (projid, tstamp, filename, ctx_id, value_name, value, value_type)"
                " VALUES ('p', 't', 'f', 0, 'n', 'v', 0)"
            )
        assert db.count("logs") == 1

    def test_transaction_rolls_back_on_error(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction() as conn:
                conn.execute(
                    "INSERT INTO logs (projid, tstamp, filename, ctx_id, value_name, value, value_type)"
                    " VALUES ('p', 't', 'f', 0, 'n', 'v', 0)"
                )
                raise RuntimeError("boom")
        assert db.count("logs") == 0
