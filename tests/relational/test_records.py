"""Tests for typed records and value encoding/decoding."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.relational.records import (
    VALUE_TYPE_BOOL,
    VALUE_TYPE_FLOAT,
    VALUE_TYPE_INT,
    VALUE_TYPE_JSON,
    VALUE_TYPE_NONE,
    VALUE_TYPE_STR,
    BuildDepRecord,
    LogRecord,
    LoopRecord,
    decode_value,
    encode_value,
)


class TestEncodeDecode:
    @pytest.mark.parametrize(
        "value, expected_type",
        [
            ("hello", VALUE_TYPE_STR),
            (42, VALUE_TYPE_INT),
            (3.5, VALUE_TYPE_FLOAT),
            (True, VALUE_TYPE_BOOL),
            (None, VALUE_TYPE_NONE),
            ([1, 2, 3], VALUE_TYPE_JSON),
            ({"a": 1}, VALUE_TYPE_JSON),
        ],
    )
    def test_type_tags(self, value, expected_type):
        _text, value_type = encode_value(value)
        assert value_type == expected_type

    @pytest.mark.parametrize(
        "value",
        ["text", "", 0, -17, 3.14159, True, False, None, [1, "two", 3.0], {"k": [1, 2]}],
    )
    def test_roundtrip(self, value):
        text, value_type = encode_value(value)
        assert decode_value(text, value_type) == value

    def test_bool_not_confused_with_int(self):
        text, value_type = encode_value(True)
        assert decode_value(text, value_type) is True

    def test_unserializable_object_falls_back_to_repr(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        text, value_type = encode_value(Weird())
        assert value_type == VALUE_TYPE_JSON or value_type == VALUE_TYPE_STR
        assert "weird" in str(decode_value(text, value_type)) or "Weird" in str(decode_value(text, value_type))

    def test_malformed_json_decodes_to_raw_text(self):
        assert decode_value("{not json", VALUE_TYPE_JSON) == "{not json"


class TestLogRecord:
    def test_create_encodes_value(self):
        record = LogRecord.create("p", "t", "f.py", 3, "acc", 0.75)
        assert record.value_type == VALUE_TYPE_FLOAT
        assert record.decoded() == 0.75

    def test_records_are_frozen(self):
        record = LogRecord.create("p", "t", "f.py", 3, "acc", 1)
        with pytest.raises(AttributeError):
            record.value = "other"

    def test_as_row_matches_insert_column_order(self):
        record = LogRecord.create("p", "t", "f.py", 3, "acc", 0.75)
        assert record.as_row() == ("p", "t", "f.py", 3, "acc", "0.75", VALUE_TYPE_FLOAT)

    def test_loop_as_row_matches_insert_column_order(self):
        record = LoopRecord("p", "t", "f.py", 4, 0, "epoch", 2, "2")
        assert record.as_row() == ("p", "t", "f.py", 4, 0, "epoch", 2, "2")


class TestBuildDepRecord:
    def test_json_roundtrip_through_row(self):
        record = BuildDepRecord(vid="v1", target="train", deps=("featurize",), cmds=("python train.py",), cached=True)
        row = (record.vid, record.target, record.deps_json(), record.cmds_json(), int(record.cached))
        restored = BuildDepRecord.from_row(row)
        assert restored == record

    def test_deps_json_is_valid_json(self):
        record = BuildDepRecord(vid="v", target="t", deps=("a", "b"))
        assert json.loads(record.deps_json()) == ["a", "b"]


# ---------------------------------------------------------------- properties

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=60),
)


@given(scalars)
def test_property_scalar_roundtrip(value):
    text, value_type = encode_value(value)
    decoded = decode_value(text, value_type)
    if isinstance(value, float):
        assert decoded == pytest.approx(value)
    else:
        assert decoded == value


@given(st.lists(st.integers(min_value=-100, max_value=100), max_size=10))
def test_property_list_roundtrip(value):
    text, value_type = encode_value(value)
    assert decode_value(text, value_type) == value
