"""Schema tests: the on-disk layout matches Figure 1 of the paper."""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import SchemaError
from repro.relational.schema import SCHEMA_VERSION, TABLES, create_schema, table_columns


class TestSchemaCreation:
    def test_all_tables_exist(self, db):
        for table in TABLES:
            expected = 1 if table == "meta" else 0  # meta holds the schema version
            assert db.count(table) == expected

    def test_schema_is_idempotent(self, db):
        # Creating the schema twice on the same connection must not fail.
        with db.transaction() as conn:
            create_schema(conn)

    def test_schema_version_recorded(self, db):
        row = db.query_one("SELECT value FROM meta WHERE key = 'schema_version'")
        assert row is not None
        assert int(row[0]) == SCHEMA_VERSION

    def test_incompatible_version_rejected(self):
        conn = sqlite3.connect(":memory:")
        create_schema(conn)
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
        conn.commit()
        with pytest.raises(SchemaError):
            create_schema(conn)


class TestFigure1Columns:
    """Column names must match the data model figure exactly."""

    def test_logs_columns(self, db):
        with db.transaction() as conn:
            columns = table_columns(conn, "logs")
        for expected in ("projid", "tstamp", "filename", "ctx_id", "value_name", "value", "value_type"):
            assert expected in columns

    def test_loops_columns(self, db):
        with db.transaction() as conn:
            columns = table_columns(conn, "loops")
        for expected in (
            "projid",
            "tstamp",
            "filename",
            "ctx_id",
            "parent_ctx_id",
            "loop_name",
            "loop_iteration",
            "iteration_value",
        ):
            assert expected in columns

    def test_ts2vid_columns(self, db):
        with db.transaction() as conn:
            columns = table_columns(conn, "ts2vid")
        for expected in ("projid", "ts_start", "ts_end", "vid", "root_target"):
            assert expected in columns

    def test_obj_store_columns(self, db):
        with db.transaction() as conn:
            columns = table_columns(conn, "obj_store")
        for expected in ("projid", "tstamp", "filename", "ctx_id", "value_name", "contents"):
            assert expected in columns

    def test_build_deps_columns(self, db):
        with db.transaction() as conn:
            columns = table_columns(conn, "build_deps")
        for expected in ("vid", "target", "deps", "cmds", "cached"):
            assert expected in columns

    def test_unknown_table_rejected(self, db):
        with db.transaction() as conn:
            with pytest.raises(SchemaError):
                table_columns(conn, "not_a_table")
