"""Tests for the SQL query surface over the context store."""

from __future__ import annotations

import pytest

from repro.errors import DatabaseError
from repro.relational.sql import register_pivot_view, run_sql, sql_over_names


@pytest.fixture()
def recorded(session):
    """Two runs with per-epoch accuracy/recall plus a list-valued log."""
    for run in range(2):
        for epoch in session.loop("epoch", range(3)):
            session.log("acc", 0.6 + run * 0.2 + epoch * 0.01)
            session.log("recall", 0.5 + run * 0.2 + epoch * 0.01)
            session.log("tags", ["a", "b"])
        session.commit(f"run {run}")
    return session


class TestRunSql:
    def test_select_over_physical_tables(self, recorded):
        frame = recorded.sql("SELECT value_name, COUNT(*) AS n FROM logs GROUP BY value_name ORDER BY value_name")
        names = frame["value_name"].to_list()
        assert names == ["acc", "recall", "tags"]
        assert frame["n"].to_list() == [6, 6, 6]

    def test_parameterized_query(self, recorded):
        frame = recorded.sql("SELECT COUNT(*) AS n FROM logs WHERE value_name = ?", params=("acc",))
        assert frame.row(0)["n"] == 6

    def test_with_statement_allowed(self, recorded):
        frame = recorded.sql(
            "WITH counts AS (SELECT value_name, COUNT(*) AS n FROM logs GROUP BY value_name)"
            " SELECT MAX(n) AS biggest FROM counts"
        )
        assert frame.row(0)["biggest"] == 6

    def test_writes_rejected(self, recorded):
        with pytest.raises(DatabaseError):
            recorded.sql("DELETE FROM logs")
        with pytest.raises(DatabaseError):
            run_sql(recorded.db, "UPDATE logs SET value = '0'")

    def test_write_smuggled_past_the_prefix_is_rejected(self, recorded):
        # Starts with WITH, so the prefix check passes — the compile-time
        # authorizer must still deny it and the data must survive.
        before = recorded.db.count("logs")
        with pytest.raises(DatabaseError, match="SELECT/WITH"):
            recorded.sql("WITH t AS (SELECT 1) DELETE FROM logs")
        assert recorded.db.count("logs") == before

    def test_malformed_sql_raises_database_error(self, recorded):
        with pytest.raises(DatabaseError, match="SQL error"):
            recorded.sql("SELECT * FROM no_such_table")
        with pytest.raises(DatabaseError, match="SQL error"):
            recorded.sql("SELECT FROM WHERE")

    def test_read_only_authorizer_is_removed_afterwards(self, recorded):
        with pytest.raises(DatabaseError):
            recorded.sql("WITH t AS (SELECT 1) DELETE FROM logs")
        # Normal write paths (outside run_sql) still work after the denial.
        recorded.db.execute("INSERT INTO meta (key, value) VALUES ('probe', '1')")
        assert recorded.db.query_one("SELECT value FROM meta WHERE key = 'probe'") == ("1",)

    def test_empty_result_preserves_columns(self, recorded):
        frame = recorded.sql("SELECT projid, tstamp FROM logs WHERE value_name = 'missing'")
        assert frame.empty
        assert frame.columns == ["projid", "tstamp"]


class TestPivotSql:
    def test_query_over_pivoted_view(self, recorded):
        frame = recorded.sql(
            "SELECT tstamp, MAX(recall) AS best_recall FROM pivot GROUP BY tstamp ORDER BY tstamp",
            names=["acc", "recall"],
        )
        assert len(frame) == 2
        assert frame["best_recall"].to_list() == pytest.approx([0.52, 0.72])

    def test_numeric_comparison_in_sql(self, recorded):
        frame = recorded.sql(
            "SELECT COUNT(*) AS n FROM pivot WHERE acc > 0.7",
            names=["acc"],
        )
        assert frame.row(0)["n"] == 3  # the three epochs of the second run

    def test_best_run_selection_like_infer_py(self, recorded):
        frame = sql_over_names(
            recorded.db,
            recorded.projid,
            ["acc", "recall"],
            "SELECT tstamp, recall FROM pivot ORDER BY recall DESC LIMIT 1",
        )
        assert frame.row(0)["recall"] == pytest.approx(0.72)

    def test_non_scalar_values_are_stringified(self, recorded):
        frame = recorded.sql("SELECT tags FROM pivot LIMIT 1", names=["tags"])
        assert "a" in frame.row(0)["tags"]

    def test_register_pivot_view_returns_columns(self, recorded):
        columns = register_pivot_view(recorded.db, recorded.projid, ["acc"])
        assert {"projid", "tstamp", "filename", "acc"} <= set(columns)

    def test_invalid_identifier_rejected(self, recorded):
        with pytest.raises(DatabaseError):
            recorded.sql("SELECT * FROM pivot", names=["bad-name!"])
        with pytest.raises(DatabaseError):
            register_pivot_view(recorded.db, recorded.projid, ["acc"], table_name="bad;drop")

    def test_empty_history_yields_empty_view(self, make_session):
        fresh = make_session("sqlfresh", default_filename="x.py")
        frame = fresh.sql("SELECT COUNT(*) AS n FROM pivot", names=["acc"])
        assert frame.row(0)["n"] == 0


class TestFacade:
    def test_facade_sql_routes_to_active_session(self, recorded):
        from repro import active_session, flor

        with active_session(recorded):
            frame = flor.sql("SELECT COUNT(*) AS n FROM logs")
        assert frame.row(0)["n"] == 18
