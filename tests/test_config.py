"""Tests for project configuration and discovery."""

from __future__ import annotations

import pytest

from repro.config import FLOR_DIR_NAME, ProjectConfig
from repro.errors import ConfigError


class TestProjectConfig:
    def test_paths_derived_from_root(self, tmp_path):
        config = ProjectConfig(tmp_path, "myproj")
        assert config.flor_dir == tmp_path / FLOR_DIR_NAME
        assert config.db_path.name == "flor.db"
        assert config.objects_dir.parent == config.flor_dir

    def test_projid_defaults_to_directory_name(self, tmp_path):
        config = ProjectConfig(tmp_path / "cool-project")
        assert config.projid == "cool-project"

    def test_projid_sanitization(self, tmp_path):
        config = ProjectConfig(tmp_path, "my project!name")
        assert " " not in config.projid
        assert "!" not in config.projid

    def test_invalid_projid_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            ProjectConfig(tmp_path, "   ")

    def test_ensure_layout_creates_directories(self, tmp_path):
        config = ProjectConfig(tmp_path / "fresh", "p").ensure_layout()
        assert config.flor_dir.is_dir()
        assert config.objects_dir.is_dir()
        assert config.checkpoints_dir.is_dir()
        assert config.staging_dir.is_dir()

    def test_config_is_frozen(self, tmp_path):
        config = ProjectConfig(tmp_path, "p")
        with pytest.raises(AttributeError):
            config.projid = "other"


class TestDiscovery:
    def test_discover_finds_enclosing_project(self, tmp_path):
        root = tmp_path / "project"
        nested = root / "src" / "deep"
        nested.mkdir(parents=True)
        (root / FLOR_DIR_NAME).mkdir()
        config = ProjectConfig.discover(nested)
        assert config.root == root.resolve()

    def test_discover_defaults_to_start_directory(self, tmp_path):
        start = tmp_path / "standalone"
        start.mkdir()
        config = ProjectConfig.discover(start)
        assert config.root == start.resolve()

    def test_environment_override(self, tmp_path, monkeypatch):
        override = tmp_path / "env-root"
        override.mkdir()
        monkeypatch.setenv("FLOR_PROJECT_DIR", str(override))
        config = ProjectConfig.discover(tmp_path / "elsewhere")
        assert config.root == override.resolve()
