"""Tests for the record buffer: staging, deferred encoding, drains."""

from __future__ import annotations

from repro.relational.records import (
    VALUE_TYPE_FLOAT,
    VALUE_TYPE_INT,
    VALUE_TYPE_JSON,
    VALUE_TYPE_NONE,
    VALUE_TYPE_STR,
)
from repro.runtime import RecordBuffer
from repro.runtime.buffer import _DEFERRED


def stage(buffer: RecordBuffer, name: str, value, ctx_id: int = 0) -> None:
    buffer.stage_log("p", "t1", "train.py", ctx_id, name, value)


class TestStaging:
    def test_scalars_defer_encoding(self):
        buffer = RecordBuffer()
        for value in (1, 1.5, "text", True, None):
            stage(buffer, "v", value)
        # No encode_value work has happened yet: the staged tuples carry the
        # raw value plus the deferral sentinel.
        assert all(row[6] is _DEFERRED for row in buffer._logs)
        assert buffer.pending == 5

    def test_mutable_values_encode_eagerly_for_snapshot_semantics(self):
        buffer = RecordBuffer()
        value = {"k": 1}
        stage(buffer, "cfg", value)
        value["k"] = 999  # mutation after the log call must not leak in
        log_rows, _ = buffer.drain_rows()
        assert log_rows[0][5] == '{"k": 1}'
        assert log_rows[0][6] == VALUE_TYPE_JSON

    def test_pending_counts_split_logs_and_loops(self):
        buffer = RecordBuffer()
        stage(buffer, "a", 1)
        buffer.stage_loop("p", "t1", "train.py", 1, 0, "epoch", 0, "0")
        assert buffer.pending == 2
        assert buffer.pending_logs == 1
        assert buffer.pending_loops == 1


class TestDrain:
    def test_drain_rows_encodes_deferred_scalars(self):
        buffer = RecordBuffer()
        stage(buffer, "i", 7)
        stage(buffer, "f", 0.25)
        stage(buffer, "s", "hi")
        stage(buffer, "n", None)
        log_rows, loop_rows = buffer.drain_rows()
        assert loop_rows == []
        by_name = {row[4]: (row[5], row[6]) for row in log_rows}
        assert by_name["i"] == ("7", VALUE_TYPE_INT)
        assert by_name["f"] == ("0.25", VALUE_TYPE_FLOAT)
        assert by_name["s"] == ("hi", VALUE_TYPE_STR)
        assert by_name["n"] == (None, VALUE_TYPE_NONE)
        assert buffer.pending == 0

    def test_drain_records_materializes_dataclasses(self):
        buffer = RecordBuffer()
        stage(buffer, "acc", 0.5, ctx_id=3)
        buffer.stage_loop("p", "t1", "train.py", 3, 0, "epoch", 2, "2")
        logs, loops = buffer.drain_records()
        assert logs[0].value_name == "acc"
        assert logs[0].decoded() == 0.5
        assert logs[0].ctx_id == 3
        assert loops[0].loop_name == "epoch"
        assert loops[0].loop_iteration == 2

    def test_drain_is_destructive(self):
        buffer = RecordBuffer()
        stage(buffer, "a", 1)
        buffer.drain_rows()
        assert buffer.drain_rows() == ([], [])


class TestStagedLoopIterations:
    def test_filters_by_run_file_and_loop(self):
        buffer = RecordBuffer()
        buffer.stage_loop("p", "t1", "train.py", 1, 0, "epoch", 0, "0")
        buffer.stage_loop("p", "t1", "train.py", 2, 0, "epoch", 4, "4")
        buffer.stage_loop("p", "t1", "train.py", 3, 0, "step", 9, "9")
        buffer.stage_loop("p", "t2", "train.py", 4, 0, "epoch", 7, "7")
        buffer.stage_loop("p", "t1", "other.py", 5, 0, "epoch", 8, "8")
        assert buffer.staged_loop_iterations("t1", "train.py", "epoch") == [0, 4]
        assert buffer.staged_loop_iterations("t1", "train.py", "step") == [9]
        assert buffer.staged_loop_iterations("t9", "train.py", "epoch") == []
