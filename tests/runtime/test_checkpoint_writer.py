"""Async checkpoint writes: drain-barrier ordering and cost accounting."""

from __future__ import annotations

import time

import pytest

from repro.core.checkpoint import (
    CheckpointKey,
    CheckpointManager,
    NeverCheckpointPolicy,
)
from repro.errors import CheckpointError
from repro.relational.database import Database
from repro.relational.repositories import ObjectRepository
from repro.runtime import AsyncCheckpointWriter


@pytest.fixture()
def db():
    with Database(":memory:") as database:
        yield database


class SlowObjectRepository(ObjectRepository):
    """Object store whose writes take a visible amount of wall clock."""

    def __init__(self, db, delay: float = 0.05):
        super().__init__(db)
        self.delay = delay
        self.puts = 0

    def put(self, record):
        time.sleep(self.delay)
        self.puts += 1
        super().put(record)


def key(ctx_id: int) -> CheckpointKey:
    return CheckpointKey("p", "t1", "train.py", ctx_id, "epoch")


class TestDrainBarrier:
    def test_restore_sees_in_flight_checkpoint(self, db):
        objects = SlowObjectRepository(db, delay=0.05)
        manager = CheckpointManager(objects, writer=AsyncCheckpointWriter(objects))
        state = {"w": 1.0}
        manager.register({"state": state})
        manager.save(key(1))  # returns before the slow store write finishes
        state["w"] = 999.0
        # restore() drains first, so the checkpoint written moments ago is
        # guaranteed visible even though the store is slow.
        assert manager.restore(key(1)) is True
        assert state["w"] == 1.0
        manager.close()

    def test_available_checkpoints_waits_for_in_flight_writes(self, db):
        objects = SlowObjectRepository(db, delay=0.05)
        manager = CheckpointManager(objects, writer=AsyncCheckpointWriter(objects))
        manager.register({"state": {"w": 1}})
        manager.save(key(1))
        manager.save(key(2))
        assert manager.available_checkpoints("p", "t1", "train.py") == [(1, "epoch"), (2, "epoch")]
        manager.close()

    def test_save_snapshots_before_later_mutations(self, db):
        objects = SlowObjectRepository(db, delay=0.05)
        manager = CheckpointManager(objects, writer=AsyncCheckpointWriter(objects))
        state = {"w": 1.0}
        manager.register({"state": state})
        manager.save(key(1))
        state["w"] = 2.0  # mutated while the write is still in flight
        manager.drain()
        assert manager.load(key(1)) == {"state": {"w": 1.0}}
        manager.close()


class TestCostAccounting:
    def test_sync_manager_splits_serialize_from_write(self, db):
        """Regression: the store write must not inflate the policy's cost."""
        objects = SlowObjectRepository(db, delay=0.08)
        manager = CheckpointManager(objects)  # inline (sync) manager
        manager.register({"state": {"w": list(range(100))}})
        manager.save(key(1))
        assert manager.saved == 1
        # Pickling a tiny dict is microseconds; the slow store write (80ms)
        # lands in write_seconds, not in the on-thread serialize cost.
        assert manager.serialize_seconds < 0.04
        assert manager.write_seconds >= 0.08

    def test_policy_is_fed_the_on_thread_cost_only(self, db):
        class RecordingPolicy:
            def __init__(self):
                self.costs = []

            def should_checkpoint(self, iteration, iter_seconds, ckpt_seconds):
                self.costs.append(ckpt_seconds)
                return True

        objects = SlowObjectRepository(db, delay=0.08)
        policy = RecordingPolicy()
        manager = CheckpointManager(objects, policy=policy)
        manager.register({"state": {"w": 1}})
        manager.maybe_save(key(1), iteration=0, iter_seconds=0.01)
        manager.maybe_save(key(2), iteration=1, iter_seconds=0.01)
        # The second decision sees the measured cost of the first save —
        # which must exclude the 80ms store write.
        assert policy.costs[1] < 0.04

    def test_async_manager_charges_only_the_snapshot_on_thread(self, db):
        objects = SlowObjectRepository(db, delay=0.08)
        manager = CheckpointManager(objects, writer=AsyncCheckpointWriter(objects))
        manager.register({"state": {"w": 1}})
        started = time.perf_counter()
        manager.save(key(1))
        on_thread = time.perf_counter() - started
        assert on_thread < 0.04  # did not wait for the 80ms store write
        assert manager.serialize_seconds < 0.04
        manager.drain()
        assert manager.write_seconds >= 0.08  # pickle + write, off-thread
        manager.close()


class TestErrorSurfacing:
    def test_unpicklable_state_surfaces_at_drain(self, db):
        objects = ObjectRepository(db)
        manager = CheckpointManager(objects, writer=AsyncCheckpointWriter(objects))
        manager.register({"bad": lambda x: x})
        manager.save(key(1))  # deepcopy of a function succeeds
        with pytest.raises(CheckpointError):
            manager.drain()
        manager.close()

    def test_submit_after_close_raises(self, db):
        objects = ObjectRepository(db)
        writer = AsyncCheckpointWriter(objects)
        writer.close()
        with pytest.raises(CheckpointError):
            writer.submit(key(1), {"w": 1})

    def test_backpressure_bounds_queued_snapshots(self, db):
        # Each queued checkpoint holds a full state copy; the bound keeps a
        # slow store from accumulating snapshots without limit.
        objects = SlowObjectRepository(db, delay=0.03)
        writer = AsyncCheckpointWriter(objects, max_pending=2)
        for i in range(6):
            writer.submit(key(i), {"w": i})
        writer.drain()
        assert writer.stats.backpressure_waits >= 1
        assert objects.puts == 6
        writer.close()

    def test_invalid_max_pending_rejected(self, db):
        with pytest.raises(ValueError):
            AsyncCheckpointWriter(ObjectRepository(db), max_pending=0)

    def test_close_is_idempotent(self, db):
        manager = CheckpointManager(
            ObjectRepository(db), policy=NeverCheckpointPolicy(), writer=None
        )
        manager.close()
        manager.close()
