"""Flusher lifecycle tests: drains, flush-on-close, errors, backpressure."""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

import pytest

from repro.relational.database import Database
from repro.runtime import ASYNC, SYNC, BackgroundFlusher, FlushCallbackError


@pytest.fixture()
def db():
    with Database(":memory:") as database:
        yield database


def log_row(i: int) -> tuple:
    return ("p", "t1", "train.py", i, "m", str(i), 0)


def loop_row(i: int) -> tuple:
    return ("p", "t1", "train.py", i, 0, "epoch", i, str(i))


class GatedDB:
    """Database stand-in whose transactions block until released."""

    def __init__(self, real: Database):
        self.real = real
        self.gate = threading.Event()
        self.transactions = 0

    @contextmanager
    def transaction(self):
        self.gate.wait(5.0)
        self.transactions += 1
        with self.real.transaction() as connection:
            yield connection


class BrokenDB:
    @contextmanager
    def transaction(self):
        raise RuntimeError("disk on fire")
        yield  # pragma: no cover


class FlakyDB:
    """Fails the first ``failures`` transactions, then delegates to a real db."""

    def __init__(self, real: Database, failures: int = 1):
        self.real = real
        self.failures = failures
        self.attempts = 0

    @contextmanager
    def transaction(self):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise RuntimeError("database is locked")
        with self.real.transaction() as connection:
            yield connection


class TestSyncMode:
    def test_submit_writes_inline(self, db):
        flusher = BackgroundFlusher(db, mode=SYNC)
        flusher.submit([log_row(0), log_row(1)], [loop_row(0)])
        assert db.count("logs") == 2
        assert db.count("loops") == 1
        assert flusher.stats.transactions == 1
        assert flusher.pending_rows == 0

    def test_inline_errors_raise_at_the_call_site(self):
        flusher = BackgroundFlusher(BrokenDB(), mode=SYNC)
        with pytest.raises(RuntimeError, match="disk on fire"):
            flusher.submit([log_row(0)])

    def test_on_written_called_with_batch_count(self, db):
        seen = []
        flusher = BackgroundFlusher(db, mode=SYNC)
        flusher.submit([log_row(0)], [loop_row(0)], on_written=seen.append)
        assert seen == [2]


class TestAsyncMode:
    def test_drain_is_the_read_your_writes_barrier(self, db):
        flusher = BackgroundFlusher(db)
        flusher.submit([log_row(i) for i in range(10)])
        flusher.drain()
        assert db.count("logs") == 10
        assert flusher.pending_rows == 0
        flusher.close()

    def test_flush_on_close(self, db):
        flusher = BackgroundFlusher(db)
        flusher.submit([log_row(0)], [loop_row(0)])
        flusher.close()
        assert db.count("logs") == 1
        assert db.count("loops") == 1

    def test_submit_after_close_falls_back_to_inline(self, db):
        flusher = BackgroundFlusher(db)
        flusher.close()
        flusher.submit([log_row(0)])
        assert db.count("logs") == 1

    def test_batches_coalesce_into_one_transaction(self, db):
        gated = GatedDB(db)
        flusher = BackgroundFlusher(gated, mode=ASYNC)
        for i in range(5):
            flusher.submit([log_row(i)])
        # The worker is stuck on the gate (or about to be); everything
        # submitted while it waits lands in one transaction.
        gated.gate.set()
        flusher.drain()
        assert db.count("logs") == 5
        assert gated.transactions <= 2  # first grab may or may not include all
        assert flusher.stats.max_coalesced_batches >= 2
        flusher.close()

    def test_on_written_runs_after_the_transaction_commits(self, db):
        counts_at_callback = []
        flusher = BackgroundFlusher(db)
        flusher.submit(
            [log_row(0)],
            on_written=lambda count: counts_at_callback.append((count, db.count("logs"))),
        )
        flusher.drain()
        assert counts_at_callback == [(1, 1)]
        flusher.close()


class TestErrorSurfacing:
    def test_transient_write_failure_is_retried_not_dropped(self, db):
        flaky = FlakyDB(db, failures=1)
        flusher = BackgroundFlusher(flaky, mode=ASYNC, retry_backoff=0.01)
        flusher.submit([log_row(0), log_row(1)])
        flusher.drain()  # no error: the retry succeeded
        assert db.count("logs") == 2
        assert flusher.stats.write_retries == 1
        flusher.close()

    def test_persistent_write_failure_drops_after_retries(self, db):
        flaky = FlakyDB(db, failures=10)
        flusher = BackgroundFlusher(flaky, mode=ASYNC, write_retries=2, retry_backoff=0.01)
        flusher.submit([log_row(0)])
        with pytest.raises(RuntimeError, match="database is locked"):
            flusher.drain()
        assert flaky.attempts == 3  # initial try + 2 retries
        flusher.close()

    def test_worker_error_surfaces_on_the_recording_thread(self, db):
        flusher = BackgroundFlusher(BrokenDB(), mode=ASYNC)
        flusher.submit([log_row(0)])
        with pytest.raises(RuntimeError, match="disk on fire"):
            flusher.drain()
        # The error is raised once; the flusher then keeps working.
        flusher.drain()
        flusher.close()

    def test_error_also_surfaces_at_close(self):
        flusher = BackgroundFlusher(BrokenDB(), mode=ASYNC)
        flusher.submit([log_row(0)])
        with pytest.raises(RuntimeError, match="disk on fire"):
            flusher.close()

    def test_callback_error_is_distinguishable_from_write_failure(self, db):
        flusher = BackgroundFlusher(db, mode=SYNC)

        def bad_callback(_count):
            raise ValueError("cache invalidation broke")

        with pytest.raises(FlushCallbackError):
            flusher.submit([log_row(0)], on_written=bad_callback)
        assert db.count("logs") == 1  # the transaction still committed

    def test_one_failing_callback_does_not_skip_the_others(self, db):
        gated = GatedDB(db)
        flusher = BackgroundFlusher(gated, mode=ASYNC)
        ran = []

        def bad_callback(_count):
            raise ValueError("first batch callback broke")

        flusher.submit([log_row(0)], on_written=bad_callback)
        flusher.submit([log_row(1)], on_written=lambda count: ran.append(count))
        gated.gate.set()  # both batches coalesce into one transaction
        with pytest.raises(FlushCallbackError):
            flusher.drain()
        assert ran == [1]  # the second batch's invalidation hook still ran
        assert db.count("logs") == 2
        flusher.close()


class TestBackpressure:
    def test_submit_blocks_at_the_bound(self, db):
        gated = GatedDB(db)
        flusher = BackgroundFlusher(gated, mode=ASYNC, max_pending_rows=4)
        flusher.submit([log_row(i) for i in range(4)])  # worker picks this up, blocks
        time.sleep(0.05)

        unblocked = threading.Event()

        def second_submit():
            flusher.submit([log_row(i) for i in range(4, 8)])
            unblocked.set()

        thread = threading.Thread(target=second_submit, daemon=True)
        thread.start()
        # The second submit must be held back while 4 rows are in flight.
        assert not unblocked.wait(0.2)
        gated.gate.set()
        assert unblocked.wait(5.0)
        flusher.drain()
        assert db.count("logs") == 8
        assert flusher.stats.backpressure_waits >= 1
        flusher.close()

    def test_invalid_configuration_rejected(self, db):
        with pytest.raises(ValueError):
            BackgroundFlusher(db, mode="weird")
        with pytest.raises(ValueError):
            BackgroundFlusher(db, max_pending_rows=0)
